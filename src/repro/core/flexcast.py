"""FlexCast: genuine overlay-based atomic multicast (paper §4, Algorithms 1-3).

Groups are arranged on a complete DAG (:class:`~repro.overlay.cdag.CDagOverlay`).
A client submits a multicast message ``m`` to its lowest common ancestor
(``m.lca()`` — the lowest-ranked destination).  The lca delivers ``m``
immediately and propagates it to the remaining destinations together with a
*history delta*; destinations deliver ``m`` only once they have every piece of
dependency information that could order another message before ``m``:

* **Strategy (a) — histories.**  Every delivered message is appended to the
  group's history DAG; histories travel (as diffs) with every envelope, so a
  destination learns orderings decided by groups it never talks to directly.

* **Strategy (b) — acks.**  A non-lca destination ``g`` sends an ``ack`` (with
  its history) to every higher destination ``h`` of the same message; ``h``
  waits for those acks before delivering, because ``g`` may have ordered other
  messages before ``m`` that ``h`` must respect.

* **Strategy (c) — notifs.**  When a group is about to forward ``m`` (or an
  ack for ``m``) and some *non-destination* descendant ``d`` sits between it
  and another destination, and the group has previously sent messages to
  ``d``, it sends a ``notif`` so that ``d`` pushes its own dependencies (acks)
  down to the destinations of ``m``.  Notified groups are carried in the
  envelopes so destinations know to wait for their acks as well.

On top of the paper's protocol, an optional **hybrid mode** fuses the
Distributed baseline's ordering authority (Skeen-style final timestamps,
:class:`~repro.core.timestamps.TimestampAuthority`) into the delivery gate:
every *global* message additionally acquires a final timestamp from its
destination groups, and contested deliveries follow ``(final timestamp, id)``
order.  This closes the c-DAG's one residual ordering hole — under extreme
cross-group conflict density, disjoint-destination chains could previously
commit complementary halves of a global delivery cycle that the down-only
information flow surfaces only after the fact (a *detected* ``acyclic-order``
anomaly).  With hybrid mode on, global acyclic order is a guaranteed
property; with it off (the default), behaviour is bit-identical to the
timestamp-free protocol.  See DESIGN.md "hybrid Skeen-timestamp ordering
authority" for the argument and the overhead trade-off (the paper's convoy
effect, §5).

Between the two sit **conflict-scoped order claims** (``conflict_shapes``):
plain mode's answer to the *single-shared-group 3-cycle*.  Three messages
whose pairs each intersect in exactly one group get their three pairwise
orders decided at three independent groups, and no down-flowing history can
relate those decisions in time — the pivot guard never even sees the race
(DESIGN.md "anatomy of the single-shared-group 3-cycle").  Given a declared
universe of destination-set shapes, shapes that share groups form *conflict
components*, and a component containing some pair that intersects in exactly
one group is **hot**.  Every global message addressed into a hot component
is *exposed*: it acquires a final Skeen timestamp exactly like hybrid mode
(the order claim, arbitrated by the same
:class:`~repro.core.timestamps.TimestampAuthority` and piggybacked on the
existing msg/ack traffic), and its deliveries follow ``(final timestamp,
id)`` order at every group, with the authority subsuming the pivot guard for
it just as in hybrid mode.  Exposing the whole component — not only the
single-intersecting shapes — is load-bearing: a timestamp edge between a
single-shared pair must never be composable with guard-ordered
(two-plus-shared) edges into a cycle, and bounded model exploration
(``repro.fuzz.explore``) found exactly that composition when exposure
stopped at the single-intersecting shapes themselves.  Component closure
removes every mixed pair wholesale: groups of different components are
disjoint, so two messages that meet at any group are either both
claim-ordered (their edge embeds in the global timestamp order) or both
guard-ordered (the covered class the pivot guard already handles).
Workloads whose declared shapes admit no single-shared pair anywhere get
``ts = None`` and run bit-identical to the classic protocol.

Also on top of the paper's protocol: **batch carriers**.  A client may
coalesce same-destination submissions into one ordering unit
(:meth:`~repro.core.message.Message.batch_of`, shipped as a
:class:`~repro.core.message.FlexCastBatch` request by
:class:`~repro.core.batching.BatchingClient`).  The carrier flows through
every rule below as a single message — one pivot, one hybrid timestamp
convoy, one history vertex, one msg/ack per destination — and
:meth:`FlexCastGroup.a_deliver` fans it out into per-member application
deliveries, so batching amortizes envelope overhead without touching the
ordering logic (DESIGN.md "batching the delivery path").

The implementation below follows the paper's pseudo-code closely; method names
echo the pseudo-code (``can_deliver`` = ``can-deliver``, ``reprocess_queues``
= ``reprocess-queues``, …) to keep the correspondence auditable.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Hashable, List, Optional, Sequence, Set, Tuple

from ..obs import (
    STAGE_DELIVER,
    STAGE_ENQUEUE,
    STAGE_FANOUT,
    STAGE_PIVOT_WAIT,
    STAGE_TS_WAIT,
    Observability,
    Tracer,
)
from ..obs.registry import SIZE_BUCKETS, Histogram
from ..overlay.base import GroupId
from ..overlay.cdag import CDagOverlay
from ..protocols.base import (
    AtomicMulticastGroup,
    AtomicMulticastProtocol,
    DeliverySink,
    ProtocolError,
)
from ..sim.transport import Transport
from .history import History, HistoryDiffTracker
from .message import (
    ClientRequest,
    Envelope,
    FlexCastAck,
    FlexCastMsg,
    FlexCastNotif,
    FlexCastTsPropose,
    HistoryDelta,
    HistorySnapshotFrame,
    Message,
    TsProposal,
)
from .timestamps import TimestampAuthority

#: Shared empty notified-set: the overwhelming majority of envelopes carry no
#: Strategy (c) notifications, so the send path reuses one immutable instance
#: instead of minting a fresh frozenset per hop.
_NO_NOTIFIED: frozenset = frozenset()


def _hot_conflict_groups(shapes: Sequence[frozenset]) -> frozenset:
    """Union of the groups of every *hot* conflict component.

    Declared shapes are nodes of a graph with an edge wherever two shapes
    share a group; a connected component is hot when some pair inside it
    intersects in exactly one group (the 3-cycle conflict class).  Groups of
    different components are disjoint by construction, so membership of a
    destination set in a hot component reduces to intersecting the returned
    group set.
    """
    # Union-find keyed by group id: shapes sharing a group merge their roots.
    parent: Dict[GroupId, GroupId] = {}

    def find(g: GroupId) -> GroupId:
        while parent[g] != g:
            parent[g] = parent[parent[g]]
            g = parent[g]
        return g

    for shape in shapes:
        anchor = None
        for g in shape:
            parent.setdefault(g, g)
            if anchor is None:
                anchor = find(g)
            else:
                parent[find(g)] = anchor
    hot_roots = {
        find(next(iter(a & b)))
        for i, a in enumerate(shapes)
        for b in shapes[i:]
        if len(a & b) == 1
    }
    return frozenset(g for g in parent if find(g) in hot_roots)


@dataclass(slots=True)
class PendingMessage:
    """Per-group protocol state about a not-yet-delivered multicast message.

    Mirrors the mutable fields the paper attaches to a message (``m.acks`` and
    ``m.notifList``); they are kept per group here because message objects are
    shared between simulated nodes and must stay immutable.
    """

    message: Message
    #: Groups whose ack for this message has been received.
    acks: Set[GroupId] = field(default_factory=set)
    #: Groups that were notified (Strategy (c)) and therefore must also ack.
    notified: Set[GroupId] = field(default_factory=set)
    #: True once the message envelope itself arrived and was enqueued.
    enqueued: bool = False


#: Upper bound on remembered acked pivots (see ``_notif_pivots``).
_MAX_PIVOTS = 64

#: Observe every Nth non-empty diff in the size histogram (weighted by N so
#: the histogram still estimates the full population); see ``_diff_for``.
DIFF_SAMPLE_EVERY = 4


@dataclass(slots=True)
class PendingNotification:
    """A received ``notif`` waiting for local open dependencies to resolve."""

    message: Message
    open_deps: Set[str]


class FlexCastGroup(AtomicMulticastGroup):
    """The FlexCast protocol logic for a single group.

    Parameters
    ----------
    group_id:
        This group's id (must belong to ``overlay``).
    overlay:
        The complete-DAG overlay shared by all groups.
    transport:
        Outbound communication channel (simulated or asyncio).
    sink:
        Application delivery callback.
    """

    def __init__(
        self,
        group_id: GroupId,
        overlay: CDagOverlay,
        transport: Transport,
        sink: DeliverySink,
        pivot_guard: bool = True,
        hybrid: bool = False,
        conflict_shapes: Optional[Sequence[Set[GroupId]]] = None,
    ) -> None:
        super().__init__(group_id, transport, sink)
        self.overlay = overlay
        #: Enables the pivot-consistency guard (see :meth:`_pivot_guard_allows`).
        #: ``False`` reverts to the seed's unguarded behaviour — kept only so
        #: regression schedules can demonstrate the lost-delivery bug they pin.
        self.pivot_guard = pivot_guard
        #: Full hybrid mode: *every* global message is timestamp-ordered and
        #: the authority subsumes the pivot guard entirely.
        self.hybrid = hybrid
        #: Conflict-scoped order claims (module docstring): the declared
        #: universe of global destination-set shapes this deployment admits.
        #: Shapes connected by shared groups form *conflict components*; a
        #: component containing a pair that intersects in exactly one group
        #: is **hot**, and every global message addressed into a hot
        #: component is *exposed* — claim-ordered through the timestamp
        #: authority.  The closure over whole components is what makes the
        #: claims sound: a single-shared-group timestamp edge must not be
        #: composable with guard-ordered (two-plus-shared) edges into a
        #: cycle, and component closure removes every mixed pair — each
        #: group belongs to at most one component, so two messages that
        #: meet anywhere are either both exposed or both guard-ordered.
        #: ``None``/empty disables the machinery; local (single-group)
        #: shapes never count.  Ignored in hybrid mode, which timestamps
        #: everything anyway.
        shapes = tuple(
            frozenset(s) for s in (conflict_shapes or ()) if len(frozenset(s)) > 1
        )
        if not hybrid and shapes:
            self.conflict_shapes: Tuple[frozenset, ...] = shapes
            self._hot_groups: frozenset = _hot_conflict_groups(shapes)
        else:
            self.conflict_shapes = ()
            self._hot_groups = frozenset()
        #: Skeen-timestamp ordering authority (None = no timestamping at
        #: all).  Hybrid mode routes every global message through it; order
        #: claims route only the hot conflict components — when no declared
        #: pair can single-intersect, there is no authority and the code
        #: path is bit-identical to the claim-free protocol.
        self.ts: Optional[TimestampAuthority] = (
            TimestampAuthority(group_id)
            if hybrid or self._hot_groups
            else None
        )
        self.history = History()
        #: Messages delivered at this group (``deliveredInG``).
        self.delivered_in_g: Set[str] = set()
        #: One FIFO queue of not-yet-delivered messages per ancestor lca, plus
        #: a queue under this group's own id for client-submitted messages
        #: (the lca usually delivers them in the same event, but the pivot
        #: guard may briefly defer them behind an in-flight predecessor).
        self.queues: Dict[GroupId, Deque[Message]] = {
            ancestor: deque() for ancestor in overlay.ancestors(group_id)
        }
        self.queues[group_id] = deque()
        #: Per-message protocol state (acks received, notified groups).
        self.pending: Dict[str, PendingMessage] = {}
        #: member id -> carrier id for every batch this group knows of.
        #: Lets the enqueue guard absorb a client retrying one *member* as a
        #: plain request while its batch is still in flight (the member has
        #: no pending entry or history vertex of its own, so none of the
        #: other guards can see it).  Lifecycle mirrors :attr:`pending`:
        #: populated when a carrier's entry is created, pruned with it by GC.
        self._batch_members: Dict[str, str] = {}
        #: Notifications waiting for open dependencies (``pendNotif``).
        self.pending_notifications: List[PendingNotification] = []
        #: ``diff-hst`` bookkeeping per descendant.
        self.diff_tracker = HistoryDiffTracker()
        #: Incrementally maintained ``open-dependencies`` set: ids of history
        #: vertices addressed to this group that it has not delivered yet.
        #: Updated on merge (additions), delivery (removal) and GC (removal),
        #: replacing the seed's full history scan.
        self._undelivered_to_me: Set[str] = set()
        #: msg_id -> (dependency epoch, dependencies_satisfied) memo for
        #: :meth:`can_deliver`'s reachability check.
        self._dep_cache: Dict[str, tuple] = {}
        #: Bumped whenever the dependency state (history structure or the
        #: open-dependency set) may have changed; versions the memo above.
        #: A plain history mutation counter is not enough: delivering a
        #: vertex that was already merged shrinks the blocking set without
        #: touching the history.
        self._dep_epoch = 0
        #: Ancestor queues whose head may have become deliverable since the
        #: last :meth:`reprocess_queues` drain (dirty-set scheduling).
        self._dirty_queues: Set[GroupId] = set()
        #: Strategy (c) pivots this group has *acked*: pivot id -> message.
        #: A notif-ack promises the destinations of the pivot that this
        #: group's dependency contribution is final, so subsequent local
        #: deliveries must never create *new* orderings before a pivot (see
        #: :meth:`_pivot_guard_allows`) — and when one is forced anyway (a
        #: late-arriving message that already precedes the pivot), the group
        #: re-acks with its fresh history so the pivot's destinations can
        #: still order correctly.  Pruned by garbage collection; in
        #: flush-less deployments the insertion-ordered dict is additionally
        #: capped at :data:`_MAX_PIVOTS` (oldest promises retire first — a
        #: pivot only matters until its destinations have delivered it, which
        #: is long past by the time dozens of newer pivots were acked), so
        #: the guard's per-delivery ancestor scans stay bounded.
        self._notif_pivots: Dict[str, Message] = {}
        #: Messages allowed through the guard by the escape path below.
        self._guard_exempt: Set[str] = set()
        #: Pending escape timer handle (at most one in flight).
        self._escape_timer = None
        #: Escape ticks observed without any delivery progress (backstop).
        self._escape_stalls = 0
        self._escape_progress_mark = -1
        #: Grace period before a guard-only block may be escaped.  Two acked
        #: pivots can impose *mutually* contradictory waits (either delivery
        #: order creates a new pre-pivot ordering for one of them); such
        #: stand-offs cannot resolve locally, so after the grace period the
        #: smallest blocked head (a deterministic, overlay-wide tiebreak) is
        #: delivered anyway.  Ordinary guard blocks resolve long before the
        #: timer fires — the blocker delivers or a merged delta shows the
        #: blocked head its own path to the pivot.
        self.guard_escape_ms = 500.0
        #: Overlay-configuration epoch this group is in.  The base protocol
        #: never changes it; the reconfiguration subsystem (repro.reconfig)
        #: bumps it during a live overlay switch, and every outbound protocol
        #: envelope is stamped with it so stale traffic is detectable.
        self.epoch = 0
        # Statistics (exposed for tests, ablations and Figure 8 style reports).
        self.stats = {
            "msgs_received": 0,
            "msgs_sent": 0,
            "acks_received": 0,
            "notifs_received": 0,
            "notifs_sent": 0,
            "acks_sent": 0,
            "gc_pruned": 0,
            "journal_compacted": 0,
            "guard_escapes": 0,
            "ts_proposals_sent": 0,
            "ts_proposals_received": 0,
            "reprocess_passes": 0,
            "pivot_guard_stalls": 0,
            # Steady-state diffs are almost always empty (the tracker is up
            # to date); they are tallied here instead of as histogram
            # samples so per-send instrumentation stays a dict increment.
            "empty_diffs": 0,
        }
        #: Lifecycle tracer (``None`` = tracing off; set by attach_obs).
        #: Hot paths guard every trace hook on this attribute, so an
        #: uninstrumented group pays one ``is not None`` check at most.
        self._tracer: Optional[Tracer] = None
        #: Site tag stamped on trace events recorded by this group.
        self._site = f"g{group_id}"
        #: Diff-size histogram (``None`` until attach_obs registers it).
        self._diff_size_hist: Optional[Histogram] = None
        #: Sampling phase for the diff-size histogram; starts one short of
        #: the period so the very first non-empty diff is always observed
        #: (short runs still produce a populated histogram).
        self._diff_sample_tick = DIFF_SAMPLE_EVERY - 1

    # --------------------------------------------------------- observability
    def attach_obs(self, obs: Observability) -> None:
        """Attach the observability hub: counters, gauges, tracing.

        Everything registered here is pull-based — callback counters over
        the existing ``stats`` dict and callback gauges over state sizes
        the group already maintains — so attaching adds **no** hot-path
        work beyond the ``is not None`` tracer guards.  The two ``leak``
        gauges encode the PR-4/PR-5 hygiene fixes as standing invariants:
        they must read zero after any clean run (the fuzz harness's
        end-of-run leak oracle enforces exactly that).
        """
        super().attach_obs(obs)
        self._tracer = obs.tracer
        registry = obs.registry
        labels = {"group": str(self.group_id)}
        for key in self.stats:
            registry.counter(
                f"flexcast_{key}_total",
                f"FlexCast protocol event count: {key.replace('_', ' ')}.",
                labels,
                fn=(lambda k=key: self.stats[k]),  # noqa: B008 - bind key
            )
        registry.gauge(
            "flexcast_queue_depth",
            "Undelivered messages across all ancestor queues.",
            labels,
            fn=lambda: sum(len(q) for q in self.queues.values()),
        )
        registry.gauge(
            "flexcast_pending_size",
            "Per-message protocol-state entries currently held.",
            labels,
            fn=lambda: len(self.pending),
        )
        registry.gauge(
            "flexcast_member_index_size",
            "Batch member->carrier index entries currently held.",
            labels,
            fn=lambda: len(self._batch_members),
        )
        registry.gauge(
            "flexcast_open_dependencies",
            "History vertices addressed here and not yet delivered.",
            labels,
            fn=lambda: len(self._undelivered_to_me),
        )
        registry.gauge(
            "flexcast_pending_notifications",
            "Strategy (c) notifs parked behind open dependencies.",
            labels,
            fn=lambda: len(self.pending_notifications),
        )
        registry.gauge(
            "flexcast_notif_pivots",
            "Acked pivots the pivot-consistency guard is honouring.",
            labels,
            fn=lambda: len(self._notif_pivots),
        )
        registry.gauge(
            "flexcast_ts_pending",
            "Hybrid timestamp entries awaiting a final timestamp.",
            labels,
            fn=lambda: self.ts.pending_count() if self.ts is not None else 0,
        )
        registry.gauge(
            "flexcast_leaked_pending_entries",
            "Pending entries whose id the history already forgot "
            "(leak invariant: must be zero).",
            labels,
            fn=self._leaked_pending_entries,
        )
        registry.gauge(
            "flexcast_member_index_orphans",
            "Member-index entries whose carrier has no pending entry "
            "(leak invariant: must be zero).",
            labels,
            fn=self._member_index_orphans,
        )
        self.history.register_metrics(registry, labels)
        self._diff_size_hist = registry.histogram(
            "flexcast_diff_size_items",
            "History-delta size (vertices + edges) per shipped non-empty "
            "diff (empty diffs are counted by flexcast_empty_diffs_total).",
            labels,
            bounds=SIZE_BUCKETS,
        )

    def _leaked_pending_entries(self) -> int:
        """Pending entries for ids the flush GC already forgot (leak)."""
        history = self.history
        return sum(1 for mid in self.pending if history.is_forgotten(mid))

    def _member_index_orphans(self) -> int:
        """Member-index entries whose carrier lost its pending entry (leak)."""
        pending = self.pending
        return sum(
            1 for carrier in self._batch_members.values() if carrier not in pending
        )

    # --------------------------------------------------------------- helpers
    def _rank(self, group: GroupId) -> int:
        return self.overlay.rank(group)

    def _pending_for(self, message: Message) -> PendingMessage:
        entry = self.pending.get(message.msg_id)
        if entry is None:
            entry = PendingMessage(message=message)
            self.pending[message.msg_id] = entry
            for member in message.members:
                self._batch_members[member.msg_id] = message.msg_id
        return entry

    def _discard_created_entry(self, message: Message) -> None:
        """Undo a :meth:`_pending_for` side effect for an absorbed arrival.

        An envelope for a *resolved* id (delivered batch member, GC'd
        message) must not leave behind the pending entry — and, for a batch
        carrier, the member-index entries — that were created just to
        evaluate the enqueue guard: resolved ids never re-enter the
        history, so no future GC pass could ever prune that state, and it
        would leak for the lifetime of the group.
        """
        self.pending.pop(message.msg_id, None)
        for member in message.members:
            self._batch_members.pop(member.msg_id, None)

    def _may_enqueue(self, entry: "PendingMessage", message: Message) -> bool:
        """Single gate every enqueue path must pass (``_on_msg``,
        ``_enqueue_local``).

        The ``is_forgotten`` clause stops a duplicated envelope (or
        re-submission) that outlived the flush GC from re-enqueuing its
        pruned — already delivered — message: the GC discards
        ``delivered_in_g``, so without it the duplicate would re-deliver,
        and in hybrid mode it could not even re-acquire a timestamp
        (``_acquire_timestamp`` refuses forgotten ids), leaving the convoy
        gate to trip on a queued message with no timestamp entry.

        The ``has_delivered`` and ``_batch_members`` clauses cover ids
        neither set above tracks: a batch *member* has no pending entry or
        history vertex of its own (only its carrier does), so a client
        retrying one member as a plain request — after the batch delivered
        (permanent delivery record) or while it is still in flight (the
        member index) — must be absorbed here, exactly the idempotent
        re-submission contract unbatched messages already have.  Without
        the in-flight clause the retry would be ordered as a second unit
        and the later carrier fan-out would break batch atomicity.
        """
        return (
            not entry.enqueued
            and message.msg_id not in self.delivered_in_g
            and not self.has_delivered(message.msg_id)
            and message.msg_id not in self._batch_members
            and not self.history.is_forgotten(message.msg_id)
        )

    def lca_of(self, message: Message) -> GroupId:
        """The lowest common ancestor (entry group) of ``message``."""
        return self.overlay.lca(message.dst)

    def _diff_for(self, dest: GroupId) -> HistoryDelta:
        """``diff-hst`` for ``dest``, observing the delta size when attached.

        This sits on the per-send hot path, so the bookkeeping is budgeted:
        empty diffs go to the ``empty_diffs`` stat (a dict increment), and
        non-empty sizes are observed 1-in-:data:`DIFF_SAMPLE_EVERY` with a
        compensating weight — an unbiased estimate of the distribution at a
        quarter of the histogram cost.  This split is what holds per-send
        instrumentation inside the <=5% budget the CI bench gate enforces.
        """
        delta = self.diff_tracker.diff_for(dest, self.history)
        if not delta.vertices and not delta.edges:
            self.stats["empty_diffs"] += 1
        elif self._diff_size_hist is not None:
            self._diff_sample_tick += 1
            if self._diff_sample_tick >= DIFF_SAMPLE_EVERY:
                self._diff_sample_tick = 0
                self._diff_size_hist.observe(
                    float(len(delta)), weight=DIFF_SAMPLE_EVERY
                )
        return delta

    def _merge_history(self, delta: HistoryDelta) -> None:
        """Merge an incoming delta and index its new open dependencies.

        Scanning only the delta's vertices keeps the update O(|delta|); the
        membership check filters duplicates and forgotten (GC'd) vertices
        that :meth:`History.merge_delta` refused to re-add.
        """
        if delta is None or delta.is_empty:
            return
        self.history.merge_delta(delta)
        self._dep_epoch += 1
        me = self.group_id
        for mid, dst in delta.iter_vertices():
            if me in dst and mid not in self.delivered_in_g and mid in self.history:
                self._undelivered_to_me.add(mid)
                if self.ts is not None and len(dst) > 1:
                    # Hybrid: a merged delta revealed a global message
                    # addressed to us before its own envelope arrived —
                    # propose now so its final timestamp converges early
                    # (the vertex carries everything a proposal needs).
                    self._acquire_timestamp(Message(msg_id=mid, dst=dst))
        # A merge can *relax* a delivery condition, not only tighten it: a
        # blocked candidate may gain its own path to a pivot (guard
        # exemption), or a new edge may close a cycle that voids a blocker
        # (poison tolerance).  Any queue head may therefore have become
        # deliverable, not only the arriving envelope's own.
        self._mark_all_queues_dirty()

    def _mark_queue_dirty(self, lca: GroupId) -> None:
        if lca in self.queues:
            self._dirty_queues.add(lca)

    def _mark_all_queues_dirty(self) -> None:
        self._dirty_queues.update(g for g, q in self.queues.items() if q)

    # ------------------------------------------------------------ entry points
    def on_client_request(self, message: Message) -> None:
        """A client submitted ``message`` to this group.

        The client is required to target the lca (Algorithm 2 line 1); a
        message submitted elsewhere indicates a routing bug.
        """
        if self.group_id not in message.dst:
            raise ProtocolError(
                f"group {self.group_id} received client message {message.msg_id} "
                f"addressed to {sorted(message.dst)}"
            )
        if self.lca_of(message) != self.group_id:
            raise ProtocolError(
                f"client sent {message.msg_id} to {self.group_id}, "
                f"but its lca is {self.lca_of(message)}"
            )
        self._enqueue_local(message)

    def on_envelope(self, sender: Hashable, envelope: Envelope) -> None:
        """Dispatch protocol envelopes (Algorithm 2)."""
        if isinstance(envelope, ClientRequest):
            self.on_client_request(envelope.message)
        elif isinstance(envelope, FlexCastMsg):
            self._on_msg(envelope)
        elif isinstance(envelope, FlexCastAck):
            self._on_ack(envelope)
        elif isinstance(envelope, FlexCastNotif):
            self._on_notif(envelope)
        elif isinstance(envelope, FlexCastTsPropose):
            self._on_ts_propose(envelope)
        elif isinstance(envelope, HistorySnapshotFrame):
            self._on_history_snapshot(envelope)
        else:
            raise ProtocolError(f"FlexCast group got unexpected envelope {envelope!r}")

    # -------------------------------------------------------- msg / ack / notif
    def _on_msg(self, envelope: FlexCastMsg) -> None:
        """``upon receiving [msg, m, history]`` at a non-lca destination."""
        message = envelope.message
        self.stats["msgs_received"] += 1
        if self.group_id not in message.dst:
            raise ProtocolError(
                f"group {self.group_id} received msg {message.msg_id} "
                f"not addressed to it (violates genuineness)"
            )
        if self.lca_of(message) == self.group_id:
            # Only clients submit at the lca; other groups never forward here.
            self._enqueue_local(message)
            return
        self._acquire_timestamp(message)
        self._observe_proposals(message, envelope.ts_proposals)
        self._merge_history(envelope.history)
        created = message.msg_id not in self.pending
        entry = self._pending_for(message)
        entry.notified.update(envelope.notified)
        if self._may_enqueue(entry, message):
            self.queues[self.lca_of(message)].append(message)
            entry.enqueued = True
            if self._tracer is not None:
                self._tracer.record(
                    message.trace,
                    STAGE_ENQUEUE,
                    self.transport.now(),
                    self._site,
                    "msg",
                )
        elif created:
            self._discard_created_entry(message)
        self._mark_queue_dirty(self.lca_of(message))
        self.reprocess_queues()

    def _on_ack(self, envelope: FlexCastAck) -> None:
        """``upon receiving [ack, m, history] from ancestor a``."""
        message = envelope.message
        self.stats["acks_received"] += 1
        self._acquire_timestamp(message)
        self._observe_proposals(message, envelope.ts_proposals)
        self._merge_history(envelope.history)
        created = message.msg_id not in self.pending
        entry = self._pending_for(message)
        entry.acks.add(envelope.from_group)
        entry.notified.update(envelope.notified)
        if created and (
            self.has_delivered(message.msg_id)
            or self.history.is_forgotten(message.msg_id)
        ):
            # A late/duplicated ack for a message this group already
            # resolved (possibly GC'd): the entry just created can serve
            # no future delivery and — resolved ids never re-enter the
            # history — no GC pass would ever prune it.
            self._discard_created_entry(message)
        # _merge_history marked all queues dirty; the ack additionally
        # relaxes this message's own ack-wait condition.
        self._mark_queue_dirty(self.lca_of(message))
        self.reprocess_queues()

    def _on_notif(self, envelope: FlexCastNotif) -> None:
        """``upon receiving [notif, m, history]`` at a non-destination group."""
        message = envelope.message
        self.stats["notifs_received"] += 1
        self._merge_history(envelope.history)
        open_deps = self.open_dependencies()
        if open_deps:
            # We must first deliver our own outstanding messages, otherwise the
            # acks we send would carry incomplete dependency information.
            self.pending_notifications.append(
                PendingNotification(message=message, open_deps=open_deps)
            )
        else:
            # The ack is a *promise*: the pivot's destinations will deliver
            # relying on this group's dependency contribution being final, so
            # from here on the group must not let unrelated messages overtake
            # known predecessors of the pivot (see _pivot_guard_allows).
            self._register_pivot(message)
            self._send_notif_ack(message)
        # The merged delta may have relaxed (or tightened) guard decisions.
        self.reprocess_queues()

    def _send_notif_ack(self, message: Message) -> None:
        """Answer a notif with the promised ack (``send-descendants``).

        This group is *not* a destination of ``message``, so its local flush
        GC may have forgotten the pivot's id already (GC order is per group
        — it says nothing about the destinations, which may still be waiting
        for this very ack).  The ack must therefore always go out; what must
        not survive the call is pending-set state for a forgotten id: such
        an id never re-enters the history, so no later GC pass could prune
        the entry and it would leak for the lifetime of the group (the leak
        gauge ``flexcast_leaked_pending_entries`` and the fuzz harness's
        end-of-run oracle pin this).
        """
        created = message.msg_id not in self.pending
        self.send_descendants(message, ack=True)
        if created and self.history.is_forgotten(message.msg_id):
            self._discard_created_entry(message)

    def _on_history_snapshot(self, envelope: HistorySnapshotFrame) -> None:
        """Cold sync: a peer pushed its packed live history in one frame.

        Used by rejoin catch-up (``restart_replica``) and any runtime that
        wants to bring a cold group up to date without waiting for the
        watermark machinery to overship per-vertex tuples.  Merging is
        idempotent (duplicates and forgotten ids are filtered), so survivors
        receiving the same frame are a cheap no-op.
        """
        self._merge_history(envelope.delta)
        self.reprocess_queues()

    def _on_ts_propose(self, envelope: FlexCastTsPropose) -> None:
        """Hybrid mode: another destination's Skeen proposal for ``message``.

        Proposals are rank-independent (they depend only on the destination
        set), so this handler has no epoch/rank preconditions — it also runs
        while the reconfiguration layer is quiescing, which is what lets a
        convoy-blocked message finish deciding and drain before a switch.
        """
        message = envelope.message
        self.stats["ts_proposals_received"] += 1
        if self.group_id not in message.dst:
            raise ProtocolError(
                f"group {self.group_id} received a timestamp proposal for "
                f"{message.msg_id} addressed to {sorted(message.dst)}"
            )
        if self.ts is None:
            # Mixed hybrid/non-hybrid deployments are invalid: a group that
            # never proposes would block every timestamp decision forever.
            raise ProtocolError(
                f"group {self.group_id} runs with hybrid mode off but received "
                f"a timestamp proposal for {message.msg_id}"
            )
        self._acquire_timestamp(message)
        self._observe_proposals(message, ((envelope.from_group, envelope.timestamp),))
        self.reprocess_queues()

    def _acquire_timestamp(self, message: Message) -> None:
        """Hybrid mode: first-contact Skeen proposal for a global message.

        Piggybacks on whatever made this group learn of ``message`` (client
        request, msg/ack envelope, merged history vertex, or a peer's
        proposal) and broadcasts the local timestamp to every other
        destination.  Duplicate contacts are absorbed by the authority, so
        re-routes, bounces and duplicated envelopes never mint a second
        proposal.
        """
        if not self._timestamped(message):
            return
        if self.has_delivered(message.msg_id) or self.history.is_forgotten(
            message.msg_id
        ):
            return
        local_ts = self.ts.propose(message.msg_id, message.dst)
        if local_ts is None:
            return
        # Proposing needs only the message's identity and destination set, so
        # the payload is stripped from the broadcast — re-shipping it |dst|-1
        # times per proposer would dwarf the ~41-byte envelope the traffic
        # accounting (and DESIGN.md's overhead claim) budget for.  The `msg`
        # envelope remains the single payload carrier.
        probe = Message(msg_id=message.msg_id, dst=message.dst)
        for dest in message.dst:
            if dest == self.group_id:
                continue
            self.send(
                dest,
                FlexCastTsPropose(
                    message=probe,
                    timestamp=local_ts,
                    from_group=self.group_id,
                    epoch=self.epoch,
                ),
            )
            self.stats["ts_proposals_sent"] += 1
        # Proposing can decide immediately (early proposals completed the
        # set), which may relax any queue head's timestamp gate.
        self._mark_all_queues_dirty()

    def _observe_proposals(
        self, message: Message, proposals: Sequence[TsProposal]
    ) -> None:
        """Hybrid mode: max-merge piggybacked/direct proposals for ``message``.

        A recorded proposal *raises* the message's effective timestamp (or
        decides it), which can unblock a head in **any** queue — the convoy
        gate compares across the whole pending set — so every queue is
        re-marked dirty on change.
        """
        if self.ts is None or not proposals:
            return
        if self.has_delivered(message.msg_id) or self.history.is_forgotten(
            message.msg_id
        ):
            # Late/duplicated proposals for a resolved (possibly already
            # garbage-collected) message: advance the clock (Lamport receive
            # rule) but never buffer state that nothing would clean up.
            self.ts.clock = max(
                self.ts.clock, max(timestamp for _, timestamp in proposals)
            )
            return
        changed = False
        for group, timestamp in proposals:
            changed = self.ts.observe(message.msg_id, group, timestamp) or changed
        if changed:
            self._mark_all_queues_dirty()

    def _timestamped(self, message: Message) -> bool:
        """True iff ``message`` is ordered by the timestamp authority —
        every global message in hybrid mode, exposed shapes under order
        claims (module docstring)."""
        if self.ts is None or not message.is_global:
            return False
        return self.hybrid or self._exposed(message.dst)

    def _exposed(self, dst: frozenset) -> bool:
        """Order claims: ``dst`` lands in a hot conflict component.

        Pure in ``dst``, symmetric, and transitively closed: every message
        that can meet an exposed message at some group is itself exposed
        (hot components own their groups outright), so timestamp edges and
        guard edges can never mix into one cycle."""
        return bool(dst & self._hot_groups)

    def _enqueue_local(self, message: Message) -> None:
        """Queue a client-submitted message at its lca and drain.

        The lca almost always delivers the message within this very call (it
        is the first destination to order it).  The queue only matters when
        the pivot guard defers it — or, in hybrid mode, while the message's
        final timestamp is still being acquired: delivering it *now* would
        slot it before an in-flight message that this group already knows
        precedes a notif pivot, retroactively invalidating an ack it has
        sent.

        The timestamp is acquired only for messages that actually enter the
        queue.  For every absorbed duplicate the acquisition was a no-op
        anyway (the authority refuses duplicate proposals; delivered and
        forgotten ids are rejected up front) — except a retried batch
        *member*, a fresh id that will never be delivered as its own unit:
        proposing for it would park an undeliverable entry at the convoy
        gate's head and stall every later global message.
        """
        created = message.msg_id not in self.pending
        entry = self._pending_for(message)
        if self._may_enqueue(entry, message):
            self._acquire_timestamp(message)
            self.queues[self.group_id].append(message)
            entry.enqueued = True
            if self._tracer is not None:
                self._tracer.record(
                    message.trace,
                    STAGE_ENQUEUE,
                    self.transport.now(),
                    self._site,
                    "local",
                )
        elif created:
            self._discard_created_entry(message)
        self._mark_queue_dirty(self.group_id)
        self.reprocess_queues()

    # ----------------------------------------------------------- core functions
    def open_dependencies(self) -> Set[str]:
        """Messages addressed to this group present in the history but not yet
        delivered here (``open-dependencies``).

        O(answer): the set is maintained incrementally on merge/deliver/GC
        instead of re-scanning the whole history per call.
        """
        return set(self._undelivered_to_me)

    def a_deliver(self, message: Message) -> None:
        """Deliver ``message`` and propagate ordering information (``a-deliver``)."""
        # Promises made before this delivery; acks sent *during* it (parked
        # notif flushes below) already carry this message in their diff.
        prior_pivots = (
            list(self._notif_pivots.items())
            if self.pivot_guard and self._notif_pivots
            else []
        )
        if self._tracer is not None:
            self._tracer.record(
                message.trace, STAGE_DELIVER, self.transport.now(), self._site
            )
        self.history.record_delivery(message)
        self.delivered_in_g.add(message.msg_id)
        self._undelivered_to_me.discard(message.msg_id)
        self._guard_exempt.discard(message.msg_id)
        self._dep_cache.pop(message.msg_id, None)
        self._dep_epoch += 1
        if message.members:
            # Batch fan-out: the carrier was ordered as one unit (one pivot,
            # one timestamp, one history vertex); the application observes
            # its members, delivered back-to-back in submission order.  The
            # fan-out is atomic within this event, so a group delivers a
            # batch all-or-nothing — a lost batch degrades exactly like N
            # lost messages, never into a partial delivery.
            for member in message.members:
                # The delivered-guard is unreachable for compliant clients
                # (the enqueue guard's member index absorbs retries before
                # they can be ordered solo, so the fuzz oracle rightly
                # treats any non-contiguous batch as a violation).  It is
                # defense in depth against a *non-compliant* client that
                # submits a member both solo and inside a batch: contiguity
                # is already forfeit there, and integrity (deliver-once)
                # must win over crashing the group.
                if not self.has_delivered(member.msg_id):
                    if self._tracer is not None:
                        self._tracer.record(
                            member.trace,
                            STAGE_FANOUT,
                            self.transport.now(),
                            self._site,
                            message.msg_id,
                        )
                    self.deliver(member)
            # Integrity bookkeeping for the carrier id itself: re-submitted
            # or bounced duplicates of the batch check `has_delivered`
            # against it, and it must survive the flush GC (which prunes
            # `delivered_in_g`) the way any delivered id does.
            self._delivered_ids.add(message.msg_id)
        else:
            self.deliver(message)

        queue = self.queues.get(self.lca_of(message))
        if queue and queue[0].msg_id == message.msg_id:
            queue.popleft()
        elif queue and self.ts is not None:
            # Hybrid delivers in (final ts, id) order, which may legally
            # invert the FIFO arrival order within one lca queue.
            for index, queued in enumerate(queue):
                if queued.msg_id == message.msg_id:
                    del queue[index]
                    break
        self.send_descendants(message, ack=(self.lca_of(message) != self.group_id))
        if self._timestamped(message):
            # Retire the timestamp entry only after the outgoing msg/ack
            # envelopes were built, so they still piggyback the full
            # proposal set for destinations that missed a direct proposal.
            self.ts.complete(message.msg_id)

        # Delivering this message may unblock pending notifications.
        still_pending: List[PendingNotification] = []
        for notif in self.pending_notifications:
            notif.open_deps.discard(message.msg_id)
            if notif.open_deps:
                still_pending.append(notif)
            else:
                # Flushing the parked notif sends the promised ack; the pivot
                # becomes binding for this group's future delivery order.
                self._register_pivot(notif.message)
                self._send_notif_ack(notif.message)
        self.pending_notifications = still_pending

        if message.is_flush:
            self._garbage_collect(message)

        # Promise maintenance: if the delivered message precedes a pivot this
        # group has already acked (a late arrival forced the violation — the
        # guard cannot hold it back forever, the message is addressed here),
        # re-ack the pivot so its destinations merge the new chain *before*
        # they deliver the pivot.  Acks are idempotent and diffs incremental,
        # so a re-ack is cheap and monotone.
        for pivot_id, pivot_message in prior_pivots:
            if (
                pivot_id in self._notif_pivots
                and pivot_id in self.history
                and message.msg_id in self._pivot_ancestors(pivot_id)
            ):
                self.send_descendants(pivot_message, ack=True)

        # Removing this message from the open-dependency set may have
        # unblocked the head of any queue.
        self._mark_all_queues_dirty()

    def send_descendants(self, message: Message, ack: bool) -> None:
        """Send ``msg`` or ``ack`` envelopes to the destinations above us
        (``send-descendants``), preceded by any required notifs."""
        self.send_notifs(message)
        entry = self._pending_for(message)
        # Almost every envelope carries no notifications; skip the per-hop
        # frozenset copy for that common case.
        notified = frozenset(entry.notified) if entry.notified else _NO_NOTIFIED
        ts_proposals: Tuple[TsProposal, ...] = (
            self.ts.proposals_of(message.msg_id)
            if self._timestamped(message)
            else ()
        )
        for dest in self.overlay.descendants(self.group_id):
            if dest not in message.dst:
                continue
            delta = self._diff_for(dest)
            if ack:
                envelope: Envelope = FlexCastAck(
                    message=message,
                    history=delta,
                    from_group=self.group_id,
                    notified=notified,
                    epoch=self.epoch,
                    ts_proposals=ts_proposals,
                )
                self.stats["acks_sent"] += 1
            else:
                envelope = FlexCastMsg(
                    message=message, history=delta, notified=notified,
                    epoch=self.epoch, ts_proposals=ts_proposals,
                )
                self.stats["msgs_sent"] += 1
            self.send(dest, envelope)

    def send_notifs(self, message: Message) -> None:
        """Strategy (c): notify non-destination descendants that must flush
        their dependencies toward ``message``'s destinations (``send-notifs``)."""
        entry = self._pending_for(message)
        for dest in self.overlay.descendants(self.group_id):
            if dest in message.dst or dest in entry.notified:
                continue
            has_higher_destination = any(
                self.overlay.is_ancestor(dest, other)
                for other in message.dst
                if other != self.group_id
            )
            if not has_higher_destination:
                continue
            if not self.history.contains_message_to(dest):
                # We never communicated with `dest`; notifying it would break
                # minimality (genuineness) — and is unnecessary, because it
                # cannot hold dependencies we created.
                continue
            delta = self._diff_for(dest)
            self.send(
                dest,
                FlexCastNotif(
                    message=message,
                    history=delta,
                    from_group=self.group_id,
                    epoch=self.epoch,
                ),
            )
            entry.notified.add(dest)
            self.stats["notifs_sent"] += 1

    def reprocess_queues(self) -> None:
        """Repeatedly deliver queue heads whose dependencies are satisfied
        (``reprocess-queues``).

        Only *dirty* queues — those whose head's delivery condition may have
        changed since the last drain — are examined, instead of restarting a
        scan over every queue after each delivery.  The invariant is that a
        clean queue's head is not deliverable: every event that can relax a
        head's condition (enqueue, ack arrival, local delivery, GC) marks the
        affected queue(s) dirty.
        """
        self.stats["reprocess_passes"] += 1
        dirty = self._dirty_queues
        guard_blocked = False
        while dirty:
            lca = dirty.pop()
            queue = self.queues.get(lca)
            if self.ts is not None and (self.hybrid or self.ts.pending_count()):
                # Hybrid: the timestamp order may invert the FIFO arrival
                # order within a queue (a later arrival can hold a smaller
                # final timestamp), so a blocked head must not wall off a
                # deliverable message behind it — scan the whole queue and
                # restart after every delivery.
                progressed = True
                while queue and progressed:
                    progressed = False
                    # Only the authority's unique minimum-key message can
                    # pass the convoy gate, so other timestamped candidates
                    # are skipped without running the full O(|pending|)
                    # gate per entry (a contested burst would otherwise
                    # make each dirty pass quadratic in the queue).
                    nxt = self.ts.next_deliverable()
                    for message in list(queue):
                        if (
                            self._timestamped(message)
                            and self.ts.is_pending(message.msg_id)
                            and message.msg_id != nxt
                        ):
                            continue
                        # Non-pending timestamped entries fall through so
                        # _ts_gate_allows can flag the invariant breach.
                        if self.can_deliver(message):
                            # a_deliver unlinks the message from the queue.
                            self.a_deliver(message)
                            progressed = True
                            break
            else:
                while queue and self.can_deliver(queue[0]):
                    # a_deliver pops the head and re-marks all queues dirty.
                    self.a_deliver(queue[0])
            if queue and self._guard_only_blocked(queue[0]):
                guard_blocked = True
                self.stats["pivot_guard_stalls"] += 1
                if self._tracer is not None:
                    self._tracer.record(
                        queue[0].trace,
                        STAGE_PIVOT_WAIT,
                        self.transport.now(),
                        self._site,
                    )
            elif (
                self._tracer is not None
                and queue
                and self.ts is not None
                and self._timestamped(queue[0])
                and self.ts.is_pending(queue[0].msg_id)
            ):
                # Hybrid: the head is waiting out its ts-propose convoy.
                self._tracer.record(
                    queue[0].trace,
                    STAGE_TS_WAIT,
                    self.transport.now(),
                    self._site,
                )
        if guard_blocked and self._escape_timer is None:
            self._escape_timer = self.transport.schedule(
                self.guard_escape_ms, self._guard_escape_tick
            )

    def _guard_only_blocked(self, message: Message) -> bool:
        """True iff only the pivot guard holds ``message`` back."""
        if self._timestamped(message):
            # Timestamped messages never wait on the guard (the authority
            # subsumes it — see :meth:`can_deliver`), so no escape timer is
            # ever needed: a timestamp block resolves on the next proposal
            # arrival or smaller-timestamp delivery, both ordinary events.
            return False
        return (
            self._acks_satisfied(message)
            and self._dependencies_satisfied(message.msg_id)
            and not self._pivot_guard_allows(message.msg_id)
        )

    def _guard_escape_tick(self) -> None:
        """Break a guard stand-off that outlived the grace period.

        A blocked head is escaped only when the wait provably cannot resolve
        locally: every message it is waiting for is itself a guard-blocked
        queue head (a mutual stand-off — two acked pivots imposing
        contradictory waits).  A blocker that is merely waiting for remote
        acks or queued behind other messages still makes progress, so its
        dependants keep waiting — except that a *distributed* stand-off
        (groups blocking each other through the guard) is not locally
        detectable, so after several ticks with no delivery progress the
        smallest blocked head is forced through as a backstop.
        """
        self._escape_timer = None
        blocked_heads = {
            queue[0].msg_id: queue[0]
            for queue in self.queues.values()
            if queue and self._guard_only_blocked(queue[0])
        }
        if not blocked_heads:
            self._escape_stalls = 0
            return
        if self.delivered_count != self._escape_progress_mark:
            self._escape_progress_mark = self.delivered_count
            self._escape_stalls = 0
        else:
            self._escape_stalls += 1

        def blockers_of(msg_id: str) -> Set[str]:
            found: Set[str] = set()
            for pivot in self._notif_pivots:
                if pivot not in self.history:
                    continue
                ancestors = self._pivot_ancestors(pivot)
                if msg_id in ancestors:
                    continue
                found.update(
                    b
                    for b in self._undelivered_to_me
                    if b != msg_id and b in ancestors
                )
            return found

        mutual = [
            msg_id
            for msg_id in blocked_heads
            if blockers_of(msg_id) <= set(blocked_heads)
        ]
        force = self._escape_stalls >= 4
        candidates = mutual if mutual else (list(blocked_heads) if force else [])
        if candidates:
            # One head per tick, smallest id first: the tiebreak is global,
            # so groups facing the same free choice break it the same way.
            self._guard_exempt.add(min(candidates, key=str))
            self.stats["guard_escapes"] += 1
            self._escape_stalls = 0
            self._mark_all_queues_dirty()
            self.reprocess_queues()
        elif self._escape_timer is None:
            self._escape_timer = self.transport.schedule(
                self.guard_escape_ms, self._guard_escape_tick
            )

    def can_deliver(self, message: Message) -> bool:
        """Delivery condition for non-lca destinations (``can-deliver``)."""
        if not self._acks_satisfied(message):
            return False
        if not self._dependencies_satisfied(message.msg_id):
            return False
        if self._timestamped(message):
            # The timestamp authority subsumes the pivot guard for
            # timestamped messages — every global message in hybrid mode,
            # the hot conflict components under order claims.  The convoy
            # gate delivers contested messages in ``(final ts, id)`` order —
            # a *global* total order — so any ordering this delivery mints
            # is consistent everywhere and the guard's concern (a new
            # pre-pivot ordering closing a cycle) cannot materialise.
            # Contradictory pivot waits, which the guarded protocol can
            # only escape heuristically, are broken by the timestamp tie
            # instead.  Under claims this is sound precisely because
            # exposure is component-closed: an exposed message never meets
            # a guard-ordered one at any group, so skipping the guard here
            # cannot invalidate a guard promise about a mixed pair.
            return self._ts_gate_allows(message)
        return self._pivot_guard_allows(message.msg_id)

    def _ts_gate_allows(self, message: Message) -> bool:
        """Hybrid convoy gate: deliver in global ``(final ts, id)`` order."""
        assert self.ts is not None
        if not self.ts.is_pending(message.msg_id):
            # Every enqueue path proposes on first contact, and the authority
            # completes a message only at delivery (which also unlinks it
            # from its queue), so a queued global message without a pending
            # entry is an invariant breach.  Fail loudly: delivering it
            # anyway would be exactly the unordered delivery hybrid mode
            # exists to rule out.
            raise ProtocolError(
                f"group {self.group_id}: queued global message "
                f"{message.msg_id} has no timestamp entry"
            )
        return self.ts.deliverable(message.msg_id)

    def _pivot_guard_allows(self, msg_id: str) -> bool:
        """Pivot-consistency guard closing the Strategy (c) ack race.

        A notif-ack for pivot ``P`` tells ``P``'s destinations that this
        group's dependency contribution to ``P`` is final — they deliver
        ``P`` relying on it.  But local deliveries keep happening after the
        ack, and delivering ``X`` before ``Y`` (both pending here) creates
        the brand-new ordering ``X ≺ Y``; if the history already shows
        ``Y ≺ … ≺ P`` while ``X`` has no path to ``P``, that new edge
        transitively slots ``X`` (and everything behind it) *before* ``P``
        after the promise was made.  Chained across groups, exactly that race
        builds a global delivery cycle that deadlocks the highest-ranked
        destination (the ``replicated_inventory`` lost-delivery bug, see
        DESIGN.md "anatomy of a lost delivery").

        The guard therefore delays ``X`` while some other undelivered local
        message ``Y`` precedes a known pivot that ``X`` does not precede:
        ``Y`` must go first (its position before ``P`` is already committed
        information, so delivering it creates nothing new).
        """
        if not self.pivot_guard or not self._notif_pivots:
            return True
        if msg_id in self._guard_exempt:
            return True
        blocking = self._undelivered_to_me
        if not blocking or (len(blocking) == 1 and msg_id in blocking):
            return True
        history = self.history
        for pivot in self._notif_pivots:
            if pivot not in history:
                continue
            ancestors = self._pivot_ancestors(pivot)
            if msg_id in ancestors:
                continue
            for blocked in blocking:
                if blocked != msg_id and blocked in ancestors:
                    return False
        return True

    def _register_pivot(self, message: Message) -> None:
        """Remember an acked pivot, retiring the oldest past the cap."""
        pivots = self._notif_pivots
        pivots[message.msg_id] = message
        while len(pivots) > _MAX_PIVOTS:
            oldest = next(iter(pivots))
            del pivots[oldest]

    def _pivot_ancestors(self, pivot: str) -> Set[str]:
        """``history.ancestors_of(pivot)`` — memoized inside the history
        itself (per mutation epoch), shared with ``depends`` and GC."""
        return self.history.ancestors_of(pivot)

    def _dependencies_satisfied(self, msg_id: str) -> bool:
        """True iff no undelivered message addressed to this group precedes
        ``msg_id``.

        A single backward reachability pass over the candidate's ancestors,
        instead of the seed's one forward BFS over the whole DAG per open
        dependency.  The result is memoized against the dependency epoch, so
        re-checks of a still-blocked head after unrelated events are O(1).
        """
        blocking = self._undelivered_to_me
        if not blocking or (len(blocking) == 1 and msg_id in blocking):
            return True
        epoch = self._dep_epoch
        cached = self._dep_cache.get(msg_id)
        if cached is not None and cached[0] == epoch:
            return cached[1]
        satisfied = True
        predecessors = self.history.predecessors
        queue = deque(predecessors.get(msg_id, ()))
        seen: Set[str] = set()
        while queue:
            node = queue.popleft()
            if node in seen:
                continue
            seen.add(node)
            if node in blocking and node != msg_id:
                satisfied = False
                break
            queue.extend(predecessors.get(node, ()))
        if not satisfied and not self.hybrid:
            # Poison tolerance: a blocking "predecessor" that is *also* a
            # descendant of the candidate sits in a delivery cycle with it —
            # a merged delta carried an upstream acyclic-order violation this
            # group can neither verify nor repair.  Honouring contradictory
            # constraints would block the queue forever and turn one ordering
            # violation into an unbounded lost-delivery cascade (the pre-fix
            # deadlock), so cycle-void blockers are ignored; genuine acyclic
            # blockers still hold the candidate back.
            #
            # Hybrid mode deliberately does NOT tolerate poison: the
            # timestamp authority makes delivery cycles impossible, so a
            # cycle-contradictory blocker would indicate a genuine protocol
            # bug — blocking (and failing the fuzz liveness oracle) is the
            # loud outcome a guaranteed property wants, not deliver-through.
            satisfied = all(
                self.history.depends(later=node, earlier=msg_id)
                for node in self.history.ancestors_of(msg_id)
                if node in blocking and node != msg_id
            )
        self._dep_cache[msg_id] = (epoch, satisfied)
        return satisfied

    def _acks_satisfied(self, message: Message) -> bool:
        """``ancestors-to-ack ⊆ ancestors-that-acked`` without materialising
        either set — this runs once per queue-head check, every pass."""
        entry = self._pending_for(message)
        acks = entry.acks
        my_rank = self._rank(self.group_id)
        lca = self.lca_of(message)
        for g in message.dst:
            if g != lca and g not in acks and self._rank(g) < my_rank:
                return False
        for g in entry.notified:
            if g not in acks and self._rank(g) < my_rank:
                return False
        return True

    def ancestors_to_ack(self, message: Message) -> Set[GroupId]:
        """Groups whose ack this group must wait for (``ancestors-to-ack``).

        These are (i) every ancestor destination except the lca, and (ii) every
        notified group that is an ancestor of this group (a notified group only
        sends acks to its own descendants, so lower notified groups are the
        only ones we can — and must — wait for).
        """
        entry = self._pending_for(message)
        my_rank = self._rank(self.group_id)
        required = {
            g
            for g in message.dst
            if g != self.lca_of(message) and self._rank(g) < my_rank
        }
        required.update(
            g for g in entry.notified if self._rank(g) < my_rank
        )
        return required

    def ancestors_that_acked(self, message: Message) -> Set[GroupId]:
        """Groups that have acked ``message`` (``ancestors-that-acked``)."""
        return set(self._pending_for(message).acks)

    # ------------------------------------------------------- garbage collection
    def _garbage_collect(self, flush: Message) -> None:
        """Prune everything ordered before a delivered flush message (§4.3).

        O(victims): the history hands back the removed ids directly (no
        before/after snapshot diff) and the diff tracker compacts the change
        journal up to the lowest descendant watermark.
        """
        keep = set()
        if self.history.last_delivered is not None:
            keep.add(self.history.last_delivered)
        victims = self.history.collect_garbage(flush.msg_id, keep=keep)
        compacted = self.diff_tracker.forget(victims, history=self.history)
        self._undelivered_to_me -= victims
        if self.ts is not None:
            # The history's forgotten-set keeps pruned ids from re-proposing
            # (checked in _acquire_timestamp), so the authority can shed its
            # completed-memory for them.
            self.ts.forget(victims)
        for victim in victims & set(self._notif_pivots):
            del self._notif_pivots[victim]
        self._dep_epoch += 1
        for victim in victims:
            self.pending.pop(victim, None)
            self.delivered_in_g.discard(victim)
            self._dep_cache.pop(victim, None)
        if self._batch_members:
            # Member index entries live exactly as long as their carrier's
            # pending entry; retries of a pruned batch's members are still
            # absorbed by the permanent delivery record / forgotten set.
            self._batch_members = {
                member: carrier
                for member, carrier in self._batch_members.items()
                if carrier not in victims
            }
        self.stats["gc_pruned"] += len(victims)
        self.stats["journal_compacted"] += compacted

    # -------------------------------------------------------- reconfiguration
    def is_quiescent(self) -> bool:
        """True iff this group holds no unfinished protocol work.

        Used by the epoch coordinator's drain detection: every ancestor queue
        empty, no open dependencies, and no notification waiting on them.
        (In-flight envelopes on the wire are the coordinator's problem — it
        cross-checks global sent/received counters.)
        """
        return (
            not self._undelivered_to_me
            and not self.pending_notifications
            and all(not q for q in self.queues.values())
        )

    def install_overlay(self, overlay: CDagOverlay, epoch: int) -> None:
        """Swap in a new overlay under a new epoch (live reconfiguration).

        Only legal when the group is quiescent — the epoch coordinator drains
        the old epoch first, so no queued message can reference the old rank
        order.  The history, its change journal and the per-descendant diff
        watermarks survive as-is: watermarks are absolute journal sequence
        numbers, and a group that only now became a descendant falls below
        ``journal_base`` and simply receives a full live snapshot on first
        contact (the PR-1 late-joiner path).  The hybrid timestamp authority
        (``self.ts``) also survives untouched: timestamps are a property of
        a message's destination set, not of any rank order, so the Lamport
        clock and any in-flight proposal state stay valid across the switch
        (a proposal raced past the drain is still merged correctly after).
        """
        if not self.is_quiescent():
            raise ProtocolError(
                f"group {self.group_id} asked to switch overlays while not "
                f"quiescent (open={sorted(self._undelivered_to_me)})"
            )
        self.overlay = overlay
        self.epoch = epoch
        self.queues = {ancestor: deque() for ancestor in overlay.ancestors(self.group_id)}
        self.queues[self.group_id] = deque()
        self._dirty_queues = set()
        self._dep_cache.clear()
        self._dep_epoch += 1

    # ------------------------------------------------------------- inspection
    def queue_sizes(self) -> Dict[GroupId, int]:
        """Number of undelivered messages per ancestor queue (monitoring)."""
        return {g: len(q) for g, q in self.queues.items()}

    def history_size(self) -> int:
        """Number of vertices currently retained in the history."""
        return len(self.history)


class FlexCastProtocol(AtomicMulticastProtocol):
    """Factory/deployment descriptor for FlexCast on a given C-DAG overlay."""

    name = "FlexCast"
    genuine = True

    def __init__(
        self,
        overlay: CDagOverlay,
        pivot_guard: bool = True,
        hybrid: bool = False,
        conflict_shapes: Optional[Sequence[Set[GroupId]]] = None,
    ) -> None:
        if not isinstance(overlay, CDagOverlay):
            raise TypeError("FlexCast requires a complete-DAG overlay")
        super().__init__(overlay)
        self.pivot_guard = pivot_guard
        #: Hybrid Skeen-timestamp ordering authority for global messages
        #: (see the module docstring); every group must agree on this flag.
        self.hybrid = hybrid
        #: Declared destination-set universe for conflict-scoped order
        #: claims (module docstring).  Every group must agree on it —
        #: exposure is a pure function of a message's shape, so agreement
        #: makes claim decisions consistent deployment-wide.  The
        #: declaration must cover every global destination set the workload
        #: can submit (the fuzz harness derives it from the scenario).
        self.conflict_shapes = (
            tuple(frozenset(s) for s in conflict_shapes)
            if conflict_shapes is not None
            else None
        )

    def create_group(
        self, group_id: GroupId, transport: Transport, sink: DeliverySink
    ) -> FlexCastGroup:
        return FlexCastGroup(
            group_id,
            self.overlay,
            transport,
            sink,
            pivot_guard=self.pivot_guard,
            hybrid=self.hybrid,
            conflict_shapes=self.conflict_shapes,
        )

    def entry_groups(self, message: Message) -> List[GroupId]:
        """Clients submit a message to its lca only."""
        self.validate_message(message)
        return [self.overlay.lca(message.dst)]
