"""FlexCast histories.

A *history* (paper §4.1, Strategy (a)) is a DAG whose vertices are messages
(identified by id, annotated with their destination set) and whose edges are
delivery-order dependencies: an edge ``m1 -> m2`` means ``m1`` was ordered
before ``m2`` somewhere, so every group must respect that order.  Each group:

* records every message it delivers in its history, chained after the
  previously delivered message (building a per-group total order);
* merges the history deltas it receives from ancestors;
* ships *diffs* of its history to descendants (tracked per descendant by
  :class:`HistoryDiffTracker`) so the ever-growing history is never resent;
* prunes the history when a garbage-collection ``flush`` message is delivered
  (§4.3).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..overlay.base import GroupId
from .message import EMPTY_DELTA, HistoryDelta, Message


class History:
    """A dependency DAG over delivered messages.

    The structure mirrors the paper's ``H = (M, D, lastDlvd)``:

    * ``M`` — :attr:`destinations`, mapping message id to destination set;
    * ``D`` — :attr:`successors` (and the mirrored :attr:`predecessors`),
      where an edge ``(a, b)`` means *b depends on a* (a was ordered first);
    * ``lastDlvd`` — :attr:`last_delivered`, the id of the last message this
      group itself delivered.
    """

    __slots__ = ("destinations", "successors", "predecessors", "last_delivered", "_forgotten")

    def __init__(self) -> None:
        self.destinations: Dict[str, FrozenSet[GroupId]] = {}
        self.successors: Dict[str, Set[str]] = {}
        self.predecessors: Dict[str, Set[str]] = {}
        self.last_delivered: Optional[str] = None
        # Messages removed by garbage collection.  Ancestors may still mention
        # them in later deltas; re-adding them would resurrect already-resolved
        # dependencies and block delivery forever, so they are remembered and
        # filtered out on merge.
        self._forgotten: Set[str] = set()

    # ---------------------------------------------------------------- basics
    def __contains__(self, msg_id: str) -> bool:
        return msg_id in self.destinations

    def __len__(self) -> int:
        return len(self.destinations)

    @property
    def num_edges(self) -> int:
        return sum(len(s) for s in self.successors.values())

    def destinations_of(self, msg_id: str) -> FrozenSet[GroupId]:
        return self.destinations[msg_id]

    def message_ids(self) -> List[str]:
        return list(self.destinations)

    def edges(self) -> List[Tuple[str, str]]:
        return [(a, b) for a, succ in self.successors.items() for b in succ]

    # -------------------------------------------------------------- mutation
    def add_vertex(self, msg_id: str, dst: FrozenSet[GroupId]) -> None:
        """Insert a message vertex (idempotent, ignores forgotten messages)."""
        if msg_id in self._forgotten or msg_id in self.destinations:
            return
        self.destinations[msg_id] = dst
        self.successors.setdefault(msg_id, set())
        self.predecessors.setdefault(msg_id, set())

    def add_edge(self, before: str, after: str) -> None:
        """Record that ``before`` was ordered before ``after``.

        Both endpoints must already be vertices; edges touching forgotten
        messages are dropped because the dependency has been fully resolved.
        """
        if before in self._forgotten or after in self._forgotten:
            return
        if before not in self.destinations or after not in self.destinations:
            return
        if before == after:
            return
        self.successors[before].add(after)
        self.predecessors[after].add(before)

    def record_delivery(self, message: Message) -> None:
        """Append a locally delivered message to the group's total order.

        Implements ``hst-add``: the new message depends on the previously
        delivered one (``lastDlvd``) and becomes the new ``lastDlvd``.
        """
        self.add_vertex(message.msg_id, message.dst)
        if self.last_delivered is not None and self.last_delivered != message.msg_id:
            # lastDlvd may have been pruned; the edge is then meaningless.
            if self.last_delivered in self.destinations:
                self.add_edge(self.last_delivered, message.msg_id)
        self.last_delivered = message.msg_id

    def merge_delta(self, delta: HistoryDelta) -> None:
        """Integrate an ancestor's history delta (``update-hst``)."""
        if delta is None or delta.is_empty:
            return
        for msg_id, dst in delta.vertices:
            self.add_vertex(msg_id, dst)
        for before, after in delta.edges:
            # An edge may reference a vertex whose record arrived in an
            # earlier delta; both endpoints must exist (or be forgotten).
            self.add_edge(before, after)

    # --------------------------------------------------------------- queries
    def depends(self, later: str, earlier: str) -> bool:
        """True iff ``later`` (transitively) depends on ``earlier``.

        Implements the paper's ``depend(m, m')``: there is a path of
        dependency edges from ``earlier`` to ``later``.
        """
        if earlier == later:
            return False
        if earlier not in self.destinations:
            return False
        # BFS forward from `earlier` through successor edges.
        queue = deque(self.successors.get(earlier, ()))
        seen: Set[str] = set()
        while queue:
            node = queue.popleft()
            if node == later:
                return True
            if node in seen:
                continue
            seen.add(node)
            queue.extend(self.successors.get(node, ()))
        return False

    def ancestors_of(self, msg_id: str) -> Set[str]:
        """All messages ``msg_id`` transitively depends on."""
        result: Set[str] = set()
        queue = deque(self.predecessors.get(msg_id, ()))
        while queue:
            node = queue.popleft()
            if node in result:
                continue
            result.add(node)
            queue.extend(self.predecessors.get(node, ()))
        return result

    def messages_addressed_to(self, group: GroupId) -> List[str]:
        """Ids of all messages in the history addressed to ``group``."""
        return [mid for mid, dst in self.destinations.items() if group in dst]

    def contains_message_to(self, group: GroupId) -> bool:
        """Paper's ``hst.containsMsgTo(g)`` used by Strategy (c)."""
        return any(group in dst for dst in self.destinations.values())

    def has_cycle(self) -> bool:
        """Defensive check used by tests/checker; the protocol never creates one."""
        colors: Dict[str, int] = {}

        def visit(node: str) -> bool:
            colors[node] = 1
            for succ in self.successors.get(node, ()):
                state = colors.get(succ, 0)
                if state == 1:
                    return True
                if state == 0 and visit(succ):
                    return True
            colors[node] = 2
            return False

        return any(colors.get(n, 0) == 0 and visit(n) for n in self.destinations)

    # --------------------------------------------------------------- pruning
    def prune_before(self, pivot_id: str, keep: Optional[Set[str]] = None) -> int:
        """Garbage-collect every message the pivot transitively depends on.

        Called when a ``flush`` message is delivered (§4.3): everything ordered
        before the flush has been resolved at every group that needed it and
        can be forgotten.  ``keep`` protects specific ids (e.g. the group's
        ``last_delivered``).  Returns the number of vertices removed.
        """
        keep = keep or set()
        victims = self.ancestors_of(pivot_id) - keep - {pivot_id}
        for victim in victims:
            self._remove_vertex(victim)
        self._forgotten.update(victims)
        return len(victims)

    def _remove_vertex(self, msg_id: str) -> None:
        for succ in self.successors.pop(msg_id, set()):
            self.predecessors.get(succ, set()).discard(msg_id)
        for pred in self.predecessors.pop(msg_id, set()):
            self.successors.get(pred, set()).discard(msg_id)
        self.destinations.pop(msg_id, None)
        if self.last_delivered == msg_id:
            self.last_delivered = None

    @property
    def forgotten_count(self) -> int:
        return len(self._forgotten)

    def is_forgotten(self, msg_id: str) -> bool:
        return msg_id in self._forgotten

    # ----------------------------------------------------------------- export
    def full_delta(self) -> HistoryDelta:
        """Snapshot of the entire history as a delta (tests, bootstrap)."""
        return HistoryDelta(
            vertices=tuple((mid, dst) for mid, dst in self.destinations.items()),
            edges=tuple(self.edges()),
            last_delivered=self.last_delivered,
        )


class HistoryDiffTracker:
    """Tracks which part of the local history each descendant already knows.

    Implements ``diff-hst`` (§4.2 line 11 and §4.3): for each higher group the
    sender remembers the vertex ids and edges it has shipped; a new delta
    contains only what is missing.  After garbage collection the shipped sets
    are pruned too, so they do not grow without bound.
    """

    def __init__(self) -> None:
        self._sent_vertices: Dict[GroupId, Set[str]] = {}
        self._sent_edges: Dict[GroupId, Set[Tuple[str, str]]] = {}

    def diff_for(self, descendant: GroupId, history: History) -> HistoryDelta:
        """Compute the delta for ``descendant`` and mark it as sent."""
        sent_v = self._sent_vertices.setdefault(descendant, set())
        sent_e = self._sent_edges.setdefault(descendant, set())

        new_vertices = tuple(
            (mid, dst)
            for mid, dst in history.destinations.items()
            if mid not in sent_v
        )
        new_edges = tuple(
            edge for edge in history.edges() if edge not in sent_e
        )
        sent_v.update(mid for mid, _ in new_vertices)
        sent_e.update(new_edges)
        if not new_vertices and not new_edges:
            return EMPTY_DELTA
        return HistoryDelta(
            vertices=new_vertices,
            edges=new_edges,
            last_delivered=history.last_delivered,
        )

    def forget(self, msg_ids: Iterable[str]) -> None:
        """Drop bookkeeping for garbage-collected messages."""
        victims = set(msg_ids)
        for sent_v in self._sent_vertices.values():
            sent_v -= victims
        for sent_e in self._sent_edges.values():
            stale = {e for e in sent_e if e[0] in victims or e[1] in victims}
            sent_e -= stale

    def sent_to(self, descendant: GroupId) -> Set[str]:
        """Vertex ids already shipped to ``descendant`` (introspection)."""
        return set(self._sent_vertices.get(descendant, set()))
