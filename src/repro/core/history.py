"""FlexCast histories.

A *history* (paper §4.1, Strategy (a)) is a DAG whose vertices are messages
(identified by id, annotated with their destination set) and whose edges are
delivery-order dependencies: an edge ``m1 -> m2`` means ``m1`` was ordered
before ``m2`` somewhere, so every group must respect that order.  Each group:

* records every message it delivers in its history, chained after the
  previously delivered message (building a per-group total order);
* merges the history deltas it receives from ancestors;
* ships *diffs* of its history to descendants (tracked per descendant by
  :class:`HistoryDiffTracker`) so the ever-growing history is never resent;
* prunes the history when a garbage-collection ``flush`` message is delivered
  (§4.3).

The structure is maintained *incrementally* so the delivery hot path scales
with the delta, not with ``|H|`` (see DESIGN.md for the complexity table and
invariants):

* a per-group destination index makes ``messages_addressed_to`` /
  ``contains_message_to`` O(1)-amortized lookups instead of full scans;
* an append-only, monotonically versioned *change journal* records every
  vertex/edge insertion; diff computation is a slice of the journal past a
  descendant's watermark (:meth:`History.changes_since`), not a rescan of the
  whole DAG;
* the *cold* path (a brand-new or long-gone descendant whose watermark
  predates the retained journal) ships a packed
  :class:`~repro.core.message.HistorySnapshot` plus the journal suffix past
  the snapshot's version instead of re-materialising per-vertex tuples, and
  :meth:`History.merge_delta` batch-applies the whole delta with one WAL
  record — so reconnects and rejoins cost O(affected), not O(|H|) python
  object churn.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Protocol, Set, Tuple

from ..obs.registry import MetricsRegistry
from ..overlay.base import GroupId
from .message import EMPTY_DELTA, HistoryDelta, HistorySnapshot, Message

#: Journal entry kinds.  Entries are plain tuples to keep append cheap:
#: ``(_JOURNAL_VERTEX, msg_id, dst)`` or ``(_JOURNAL_EDGE, before, after)``.
_JOURNAL_VERTEX = "v"
_JOURNAL_EDGE = "e"

#: Extra WAL-only record kinds (never in the in-memory journal): a local
#: delivery (the ``lastDlvd`` / delivered-set transition must survive a
#: restart even though diffs never ship it), a garbage-collection round, and
#: a batched delta merge (one record per :meth:`History.merge_delta` /
#: :meth:`History.install_snapshot` instead of one per vertex/edge).
_WAL_DELIVERY = "d"
_WAL_FORGET = "f"
_WAL_DELTA = "D"

#: A diff request at watermark 0 switches from the journal slice to the
#: packed-snapshot cold path once the history's version reaches this many
#: journal entries; below it, slicing a short journal is cheaper than
#: building/caching a snapshot.
COLD_SYNC_MIN_ENTRIES = 256

#: Memoized backward-reachability sets kept per mutation epoch (bounded so a
#: pathological query pattern cannot pin O(|H|^2) memory).
_ANC_CACHE_MAX = 128

#: Default WAL length (records) above which journal compaction also writes a
#: snapshot and resets the WAL, so recovery replays snapshot + suffix.
SNAPSHOT_MIN_WAL_RECORDS = 512


class WALLike(Protocol):
    """The slice of :class:`repro.storage.base.WAL` the history needs.

    Structural typing keeps the dependency one-directional: ``repro.storage``
    imports ``repro.core`` (for recovery helpers), never the other way.
    """

    def append(self, record: Any) -> None: ...

    def records(self) -> List[Any]: ...

    def reset(self, records: Iterable[Any] = ()) -> None: ...

    def __len__(self) -> int: ...


class StorageLike(Protocol):
    """The slice of :class:`repro.storage.base.Storage` the history needs."""

    def wal(self, name: str) -> WALLike: ...

    def write_snapshot(self, name: str, payload: Any) -> None: ...

    def read_snapshot(self, name: str) -> Optional[Any]: ...


class History:
    """A dependency DAG over delivered messages.

    The structure mirrors the paper's ``H = (M, D, lastDlvd)``:

    * ``M`` — :attr:`destinations`, mapping message id to destination set;
    * ``D`` — :attr:`successors` (and the mirrored :attr:`predecessors`),
      where an edge ``(a, b)`` means *b depends on a* (a was ordered first);
    * ``lastDlvd`` — :attr:`last_delivered`, the id of the last message this
      group itself delivered.

    On top of the paper structure, two incremental indexes are maintained on
    every mutation (the invariants are spelled out in DESIGN.md):

    * ``_by_group`` — ``group -> {msg_id}`` over the *live* vertices, kept in
      sync by :meth:`add_vertex` / :meth:`_remove_vertex`;
    * ``_journal`` — the append-only change journal.  ``version`` is the
      sequence number of the next entry; removals are never journaled (diffs
      only ship additions, exactly like the seed implementation) — pruned
      entries are filtered lazily in :meth:`changes_since` and dropped for
      good when the journal is compacted.
    """

    __slots__ = (
        "destinations",
        "successors",
        "predecessors",
        "last_delivered",
        "_forgotten",
        "_by_group",
        "_journal",
        "_journal_base",
        "_wal",
        "_storage",
        "_store_name",
        "_snapshot_min",
        "_delivered_local",
        "_snapshot_cache",
        "_anc_cache",
        "_anc_cache_epoch",
        "_mutation_epoch",
        "_cold_sync_min",
    )

    def __init__(self) -> None:
        self.destinations: Dict[str, FrozenSet[GroupId]] = {}
        self.successors: Dict[str, Set[str]] = {}
        self.predecessors: Dict[str, Set[str]] = {}
        self.last_delivered: Optional[str] = None
        # Messages removed by garbage collection.  Ancestors may still mention
        # them in later deltas; re-adding them would resurrect already-resolved
        # dependencies and block delivery forever, so they are remembered and
        # filtered out on merge.
        self._forgotten: Set[str] = set()
        # group -> ids of live vertices addressed to that group.
        self._by_group: Dict[GroupId, Set[str]] = {}
        # Append-only change journal; _journal_base is the sequence number of
        # the first retained entry (entries below it were compacted away once
        # every tracked descendant's watermark had passed them).
        self._journal: List[Tuple] = []
        self._journal_base = 0
        # Optional durability (attach_storage): every mutation is mirrored to
        # a write-ahead log; snapshots piggyback on journal compaction.
        self._wal: Optional[WALLike] = None
        self._storage: Optional[StorageLike] = None
        self._store_name: Optional[str] = None
        self._snapshot_min = SNAPSHOT_MIN_WAL_RECORDS
        # Ids this group delivered *itself* (record_delivery), as opposed to
        # vertices merged from ancestors' deltas.  Needed at recovery to
        # rebuild the protocol's delivered set; cheap to maintain otherwise.
        self._delivered_local: Set[str] = set()
        # Packed snapshot reused across cold diffs.  Valid while no vertex has
        # been removed since it was built (the journal suffix past its version
        # then reconstructs the live DAG exactly); GC invalidates it.
        self._snapshot_cache: Optional[HistorySnapshot] = None
        # Memoized backward reachability (ancestors_of).  Keyed per vertex,
        # valid for one mutation epoch: the epoch advances whenever an edge is
        # added or a vertex removed (vertex *additions* cannot change existing
        # reachability, so they do not invalidate).
        self._anc_cache: Dict[str, Set[str]] = {}
        self._anc_cache_epoch = 0
        self._mutation_epoch = 0
        self._cold_sync_min = COLD_SYNC_MIN_ENTRIES

    # ---------------------------------------------------------------- basics
    def __contains__(self, msg_id: str) -> bool:
        return msg_id in self.destinations

    def __len__(self) -> int:
        return len(self.destinations)

    @property
    def num_edges(self) -> int:
        return sum(len(s) for s in self.successors.values())

    @property
    def version(self) -> int:
        """Sequence number of the next journal entry (monotonic)."""
        return self._journal_base + len(self._journal)

    @property
    def journal_len(self) -> int:
        """Number of journal entries currently retained (introspection)."""
        return len(self._journal)

    @property
    def journal_base(self) -> int:
        """Sequence number of the oldest retained journal entry."""
        return self._journal_base

    def destinations_of(self, msg_id: str) -> FrozenSet[GroupId]:
        return self.destinations[msg_id]

    def message_ids(self) -> List[str]:
        return list(self.destinations)

    def edges(self) -> List[Tuple[str, str]]:
        return [(a, b) for a, succ in self.successors.items() for b in succ]

    # -------------------------------------------------------------- mutation
    def add_vertex(self, msg_id: str, dst: FrozenSet[GroupId]) -> None:
        """Insert a message vertex (idempotent, ignores forgotten messages)."""
        if msg_id in self._forgotten or msg_id in self.destinations:
            return
        self.destinations[msg_id] = dst
        self.successors.setdefault(msg_id, set())
        self.predecessors.setdefault(msg_id, set())
        for group in dst:
            self._by_group.setdefault(group, set()).add(msg_id)
        self._journal.append((_JOURNAL_VERTEX, msg_id, dst))
        if self._wal is not None:
            self._wal.append([_JOURNAL_VERTEX, msg_id, sorted(dst, key=str)])

    def add_edge(self, before: str, after: str) -> None:
        """Record that ``before`` was ordered before ``after``.

        Both endpoints must already be vertices; edges touching forgotten
        messages are dropped because the dependency has been fully resolved.
        Duplicate edges are ignored (and not journaled again).
        """
        if before in self._forgotten or after in self._forgotten:
            return
        if before not in self.destinations or after not in self.destinations:
            return
        if before == after:
            return
        succ = self.successors[before]
        if after in succ:
            return
        succ.add(after)
        self.predecessors[after].add(before)
        self._mutation_epoch += 1
        self._journal.append((_JOURNAL_EDGE, before, after))
        if self._wal is not None:
            self._wal.append([_JOURNAL_EDGE, before, after])

    def record_delivery(self, message: Message) -> None:
        """Append a locally delivered message to the group's total order.

        Implements ``hst-add``: the new message depends on the previously
        delivered one (``lastDlvd``) and becomes the new ``lastDlvd``.
        """
        self.add_vertex(message.msg_id, message.dst)
        if self.last_delivered is not None and self.last_delivered != message.msg_id:
            # add_edge validates both endpoints, so a pruned lastDlvd (whose
            # edge would be meaningless) is rejected there.
            self.add_edge(self.last_delivered, message.msg_id)
        self.last_delivered = message.msg_id
        self._delivered_local.add(message.msg_id)
        if self._wal is not None:
            self._wal.append([_WAL_DELIVERY, message.msg_id])

    def merge_delta(self, delta: HistoryDelta) -> None:
        """Integrate an ancestor's history delta (``update-hst``).

        The whole delta — packed snapshot (cold sync), then journal suffix —
        is applied as one batch: indexes are updated incrementally per entry
        but the WAL receives a *single* record covering everything actually
        applied, so a reconnect-sized delta costs one durable append instead
        of one per vertex/edge.
        """
        if delta is None or delta.is_empty:
            return
        applied_v: List[Tuple[str, FrozenSet[GroupId]]] = []
        applied_e: List[Tuple[str, str]] = []
        if delta.snapshot is not None:
            av, ae = self._install_snapshot_content(delta.snapshot)
            applied_v += av
            applied_e += ae
        av, ae = self._bulk_apply(delta.vertices, delta.edges)
        applied_v += av
        applied_e += ae
        self._wal_log_delta(applied_v, applied_e)

    def install_snapshot(self, snapshot: HistorySnapshot) -> Tuple[int, int]:
        """Bulk-merge a packed snapshot into this history.

        On an empty, never-compacted history the indexes are swapped in
        wholesale (no per-entry journal replay); otherwise the content is
        batch-applied through the same incremental path as
        :meth:`merge_delta`.  Either way durability costs one WAL record.
        Returns ``(vertices_applied, edges_applied)``.
        """
        applied_v, applied_e = self._install_snapshot_content(snapshot)
        self._wal_log_delta(applied_v, applied_e)
        return len(applied_v), len(applied_e)

    def _install_snapshot_content(
        self, snapshot: HistorySnapshot
    ) -> Tuple[List[Tuple[str, FrozenSet[GroupId]]], List[Tuple[str, str]]]:
        if snapshot.is_empty:
            return [], []
        fresh = (
            not self.destinations
            and not self._forgotten
            and not self._journal
            and self._journal_base == 0
        )
        if not fresh:
            return self._bulk_apply(
                zip(snapshot.ids, snapshot.dsts),
                zip(snapshot.edges_a, snapshot.edges_b),
            )
        # Brand-new history: swap the indexes in wholesale.  The installed
        # entries are treated as pre-compacted journal history (journal_base
        # advances past them), so this node's own descendants fall below the
        # base and get the cold snapshot path — no per-entry journal replay
        # anywhere.
        ids, dsts = snapshot.ids, snapshot.dsts
        self.destinations = dict(zip(ids, dsts))
        self.successors = {mid: set() for mid in ids}
        self.predecessors = {mid: set() for mid in ids}
        by_group = self._by_group
        for mid, dst in zip(ids, dsts):
            for group in dst:
                members = by_group.get(group)
                if members is None:
                    by_group[group] = members = set()
                members.add(mid)
        applied_e: List[Tuple[str, str]] = []
        successors = self.successors
        predecessors = self.predecessors
        for a, b in zip(snapshot.edges_a, snapshot.edges_b):
            succ = successors.get(a)
            if succ is None or b not in predecessors or a == b or b in succ:
                continue
            succ.add(b)
            predecessors[b].add(a)
            applied_e.append((a, b))
        if applied_e:
            self._mutation_epoch += 1
        self._journal_base = len(ids) + len(applied_e)
        self._snapshot_cache = None
        return list(zip(ids, dsts)), applied_e

    def _bulk_apply(
        self,
        vertices: Iterable[Tuple[str, FrozenSet[GroupId]]],
        edges: Iterable[Tuple[str, str]],
    ) -> Tuple[List[Tuple[str, FrozenSet[GroupId]]], List[Tuple[str, str]]]:
        """Apply vertices/edges with :meth:`add_vertex`/:meth:`add_edge`
        semantics (idempotent, forgotten-filtered, journaled) but without
        per-entry WAL appends; returns what was actually applied."""
        destinations = self.destinations
        forgotten = self._forgotten
        successors = self.successors
        predecessors = self.predecessors
        by_group = self._by_group
        journal = self._journal
        applied_v: List[Tuple[str, FrozenSet[GroupId]]] = []
        applied_e: List[Tuple[str, str]] = []
        for msg_id, dst in vertices:
            if msg_id in forgotten or msg_id in destinations:
                continue
            destinations[msg_id] = dst
            successors.setdefault(msg_id, set())
            predecessors.setdefault(msg_id, set())
            for group in dst:
                members = by_group.get(group)
                if members is None:
                    by_group[group] = members = set()
                members.add(msg_id)
            journal.append((_JOURNAL_VERTEX, msg_id, dst))
            applied_v.append((msg_id, dst))
        for before, after in edges:
            if before in forgotten or after in forgotten:
                continue
            if before not in destinations or after not in destinations:
                continue
            if before == after:
                continue
            succ = successors[before]
            if after in succ:
                continue
            succ.add(after)
            predecessors[after].add(before)
            journal.append((_JOURNAL_EDGE, before, after))
            applied_e.append((before, after))
        if applied_e:
            self._mutation_epoch += 1
        return applied_v, applied_e

    def _wal_log_delta(
        self,
        applied_v: List[Tuple[str, FrozenSet[GroupId]]],
        applied_e: List[Tuple[str, str]],
    ) -> None:
        if self._wal is None or not (applied_v or applied_e):
            return
        self._wal.append(
            [
                _WAL_DELTA,
                [[mid, sorted(dst, key=str)] for mid, dst in applied_v],
                [[a, b] for a, b in applied_e],
            ]
        )

    # --------------------------------------------------------------- queries
    def depends(self, later: str, earlier: str) -> bool:
        """True iff ``later`` (transitively) depends on ``earlier``.

        Implements the paper's ``depend(m, m')``: there is a path of
        dependency edges from ``earlier`` to ``later``.  Answered from the
        memoized backward-reachability set of ``later`` (the same index the
        delivery guard uses), so repeated queries against a stable DAG are
        O(1) after the first instead of a fresh BFS each time.
        """
        if earlier == later:
            return False
        if earlier not in self.destinations:
            return False
        return earlier in self.ancestors_of(later)

    def ancestors_of(self, msg_id: str) -> Set[str]:
        """All messages ``msg_id`` transitively depends on.

        Memoized per mutation epoch; the returned set is shared with the
        memo, so callers must treat it as **read-only** (derive new sets via
        ``-``/``|`` as :meth:`collect_garbage` does).
        """
        cache = self._anc_cache
        if self._anc_cache_epoch != self._mutation_epoch:
            cache.clear()
            self._anc_cache_epoch = self._mutation_epoch
        cached = cache.get(msg_id)
        if cached is not None:
            return cached
        result: Set[str] = set()
        queue = deque(self.predecessors.get(msg_id, ()))
        while queue:
            node = queue.popleft()
            if node in result:
                continue
            result.add(node)
            queue.extend(self.predecessors.get(node, ()))
        if len(cache) >= _ANC_CACHE_MAX:
            cache.clear()
        cache[msg_id] = result
        return result

    def messages_addressed_to(self, group: GroupId) -> List[str]:
        """Ids of all messages in the history addressed to ``group``.

        O(answer) thanks to the per-group destination index (the seed scanned
        every vertex on every call).
        """
        return list(self._by_group.get(group, ()))

    def contains_message_to(self, group: GroupId) -> bool:
        """Paper's ``hst.containsMsgTo(g)`` used by Strategy (c).  O(1)."""
        return bool(self._by_group.get(group))

    def has_cycle(self) -> bool:
        """Defensive check used by tests/checker; the protocol never creates one."""
        colors: Dict[str, int] = {}

        def visit(node: str) -> bool:
            colors[node] = 1
            for succ in self.successors.get(node, ()):
                state = colors.get(succ, 0)
                if state == 1:
                    return True
                if state == 0 and visit(succ):
                    return True
            colors[node] = 2
            return False

        return any(colors.get(n, 0) == 0 and visit(n) for n in self.destinations)

    # ----------------------------------------------------------- journal/diff
    def changes_since(
        self, watermark: int
    ) -> Tuple[
        Tuple[Tuple[str, FrozenSet[GroupId]], ...],
        Tuple[Tuple[str, str], ...],
        Optional[HistorySnapshot],
        int,
    ]:
        """Changes journaled at or after ``watermark``.

        Returns ``(vertices, edges, snapshot, version)`` where ``version`` is
        the new watermark for the caller.  Entries whose vertices were pruned
        in the meantime are filtered out, so a forgotten message can never
        reappear in a delta.

        The *warm* path (watermark within the retained journal, modest gap)
        returns a journal slice with ``snapshot is None``.  The *cold* path —
        the watermark predates the retained journal, or a brand-new caller
        (watermark 0) faces a long journal — returns the cached packed
        :class:`HistorySnapshot` plus the short journal suffix past the
        snapshot's version.  Both carry exactly the live content the caller
        is missing; the cold form just avoids re-materialising O(|H|)
        per-vertex tuples for every reconnect.
        """
        version = self.version
        if watermark >= version:
            return (), (), None, version
        cold = watermark < self._journal_base or (
            watermark == 0 and version >= self._cold_sync_min
        )
        if not cold:
            vertices, edges = self._journal_slice(watermark)
            return vertices, edges, None, version
        # The journal below the base was compacted because every tracked
        # descendant had already seen it; a caller this far behind has never
        # been sent anything (or lost what it had), so ship the whole live
        # history once — as a packed snapshot shared across such callers.
        snapshot = self.live_snapshot()
        if snapshot.version >= version:
            return (), (), snapshot, version
        vertices, edges = self._journal_slice(snapshot.version)
        return vertices, edges, snapshot, version

    def _journal_slice(
        self, since: int
    ) -> Tuple[Tuple[Tuple[str, FrozenSet[GroupId]], ...], Tuple[Tuple[str, str], ...]]:
        """Live vertices/edges journaled at or after ``since`` (>= base)."""
        new_vertices: List[Tuple[str, FrozenSet[GroupId]]] = []
        new_edges: List[Tuple[str, str]] = []
        destinations = self.destinations
        successors = self.successors
        for entry in self._journal[since - self._journal_base :]:
            if entry[0] == _JOURNAL_VERTEX:
                if entry[1] in destinations:
                    new_vertices.append((entry[1], entry[2]))
            else:
                before, after = entry[1], entry[2]
                if after in successors.get(before, ()):
                    new_edges.append((before, after))
        return tuple(new_vertices), tuple(new_edges)

    def live_snapshot(self) -> HistorySnapshot:
        """The live history as a packed snapshot (parallel arrays), cached.

        The cache stays valid while the history only *grows* — new entries
        land in the journal past ``snapshot.version``, so cold diffs are
        ``cached snapshot + short suffix``.  Garbage collection invalidates
        it (a pruned vertex must never ship: the receiver would park it in
        its pending set forever), and it is rebuilt when compaction passes
        its version or the suffix outgrows the live size.
        """
        snapshot = self._snapshot_cache
        version = self.version
        if (
            snapshot is None
            or snapshot.version < self._journal_base
            or version - snapshot.version > max(self._cold_sync_min, len(self.destinations))
        ):
            edges_a: List[str] = []
            edges_b: List[str] = []
            for a, succ in self.successors.items():
                for b in succ:
                    edges_a.append(a)
                    edges_b.append(b)
            snapshot = HistorySnapshot(
                ids=tuple(self.destinations),
                dsts=tuple(self.destinations.values()),
                edges_a=tuple(edges_a),
                edges_b=tuple(edges_b),
                last_delivered=self.last_delivered,
                version=version,
            )
            self._snapshot_cache = snapshot
        return snapshot

    def cold_delta(self) -> HistoryDelta:
        """The full live history as a snapshot-bearing delta (cold sync)."""
        snapshot = self.live_snapshot()
        vertices, edges = (
            ((), ())
            if snapshot.version >= self.version
            else self._journal_slice(snapshot.version)
        )
        return HistoryDelta(
            vertices=vertices,
            edges=edges,
            last_delivered=self.last_delivered,
            seq=self.version,
            snapshot=snapshot,
        )

    def compact_journal(self, upto: int) -> int:
        """Drop journal entries below sequence number ``upto``.

        Only safe when every tracked descendant's watermark is >= ``upto``
        (enforced by :meth:`HistoryDiffTracker.forget`, the sole caller on the
        protocol path).  Returns the number of entries dropped.
        """
        upto = min(upto, self.version)
        if upto <= self._journal_base:
            return 0
        dropped = upto - self._journal_base
        del self._journal[:dropped]
        self._journal_base = upto
        # Snapshot cadence piggybacks on compaction (the GC path): once the
        # WAL has accumulated enough records, fold it into a snapshot so
        # recovery replays snapshot + suffix instead of the node's whole life.
        if self._wal is not None and len(self._wal) >= self._snapshot_min:
            self.snapshot_now()
        return dropped

    # --------------------------------------------------------------- pruning
    def prune_before(self, pivot_id: str, keep: Optional[Set[str]] = None) -> int:
        """Garbage-collect every message the pivot transitively depends on.

        Returns the number of vertices removed; see :meth:`collect_garbage`
        for the victim set itself.
        """
        return len(self.collect_garbage(pivot_id, keep=keep))

    def collect_garbage(self, pivot_id: str, keep: Optional[Set[str]] = None) -> Set[str]:
        """Prune like :meth:`prune_before` but return the removed ids.

        Called when a ``flush`` message is delivered (§4.3): everything ordered
        before the flush has been resolved at every group that needed it and
        can be forgotten.  ``keep`` protects specific ids (e.g. the group's
        ``last_delivered``).  Returning the victim set lets callers update
        their own indexes in O(victims) instead of diffing two snapshots.
        """
        keep = keep or set()
        victims = self.ancestors_of(pivot_id) - keep - {pivot_id}
        for victim in victims:
            self._remove_vertex(victim)
        self._forgotten.update(victims)
        if victims and self._wal is not None:
            self._wal.append([_WAL_FORGET, sorted(victims)])
        return victims

    def _remove_vertex(self, msg_id: str) -> None:
        # A pruned vertex must never appear in a future delta, so the packed
        # snapshot (if any) is stale from here on; reachability changed too.
        self._snapshot_cache = None
        self._mutation_epoch += 1
        for succ in self.successors.pop(msg_id, set()):
            self.predecessors.get(succ, set()).discard(msg_id)
        for pred in self.predecessors.pop(msg_id, set()):
            self.successors.get(pred, set()).discard(msg_id)
        dst = self.destinations.pop(msg_id, None)
        if dst:
            for group in dst:
                members = self._by_group.get(group)
                if members is not None:
                    members.discard(msg_id)
                    if not members:
                        del self._by_group[group]
        if self.last_delivered == msg_id:
            self.last_delivered = None

    @property
    def forgotten_count(self) -> int:
        return len(self._forgotten)

    def is_forgotten(self, msg_id: str) -> bool:
        return msg_id in self._forgotten

    def register_metrics(
        self, registry: MetricsRegistry, labels: Dict[str, str]
    ) -> None:
        """Register pull-based gauges over this history (see repro.obs).

        Every series is a callback over state the history already
        maintains (sizes and monotone counters), so registration adds no
        mutation-path work at all — the values are computed at scrape
        time.  ``history_forgotten_total`` is the GC forget counter; its
        rate over scrape intervals is the GC forget rate.
        """
        registry.gauge(
            "history_vertices",
            "Live vertices currently retained in the history DAG.",
            labels,
            fn=lambda: len(self),
        )
        registry.gauge(
            "history_edges",
            "Dependency edges currently retained in the history DAG.",
            labels,
            fn=lambda: self.num_edges,
        )
        registry.gauge(
            "history_journal_len",
            "Entries in the append-only change journal (post-compaction).",
            labels,
            fn=lambda: self.journal_len,
        )
        registry.gauge(
            "history_journal_base",
            "Sequence number of the oldest retained journal entry.",
            labels,
            fn=lambda: self.journal_base,
        )
        registry.counter(
            "history_version_total",
            "Journal sequence number (total recorded mutations).",
            labels,
            fn=lambda: self.version,
        )
        registry.counter(
            "history_forgotten_total",
            "Vertices forgotten by garbage collection since birth.",
            labels,
            fn=lambda: self.forgotten_count,
        )

    # ------------------------------------------------------------- durability
    @property
    def delivered_locally(self) -> FrozenSet[str]:
        """Ids this group delivered itself (survives recovery)."""
        return frozenset(self._delivered_local)

    def attach_storage(
        self,
        storage: StorageLike,
        name: str,
        snapshot_min_wal_records: int = SNAPSHOT_MIN_WAL_RECORDS,
    ) -> None:
        """Mirror every future mutation of this history to ``storage``.

        The WAL is ``<name>.journal``; snapshots are written under ``name``.
        If the history already holds state that the storage does not (attach
        after the fact rather than at birth/recovery), a snapshot is taken
        immediately so durable state never lags the in-memory DAG.
        """
        self._storage = storage
        self._store_name = name
        self._snapshot_min = snapshot_min_wal_records
        self._wal = storage.wal(name + ".journal")
        has_state = bool(self.destinations) or self.last_delivered is not None
        if has_state and len(self._wal) == 0 and storage.read_snapshot(name) is None:
            self.snapshot_now()

    def snapshot_now(self) -> None:
        """Write a full snapshot and reset the WAL to empty (explicit trigger)."""
        if self._storage is None or self._store_name is None or self._wal is None:
            raise RuntimeError("no storage attached (call attach_storage first)")
        self._storage.write_snapshot(self._store_name, self._snapshot_payload())
        self._wal.reset()

    def _snapshot_payload(self) -> Dict[str, Any]:
        return {
            "schema": 1,
            "version": self.version,
            "last_delivered": self.last_delivered,
            "forgotten": sorted(self._forgotten),
            "delivered": sorted(self._delivered_local),
            "vertices": [
                [mid, sorted(dst, key=str)] for mid, dst in self.destinations.items()
            ],
            "edges": [[a, b] for a, b in self.edges()],
        }

    def _restore_snapshot(self, payload: Dict[str, Any]) -> None:
        """Load a snapshot into an empty history (no journal/WAL writes)."""
        if payload.get("schema") != 1:
            raise ValueError(f"unknown history snapshot schema: {payload.get('schema')!r}")
        self._journal_base = int(payload["version"])
        self.last_delivered = payload["last_delivered"]
        self._forgotten = set(payload["forgotten"])
        self._delivered_local = set(payload["delivered"])
        for mid, dst in payload["vertices"]:
            dst_set = frozenset(dst)
            self.destinations[mid] = dst_set
            self.successors.setdefault(mid, set())
            self.predecessors.setdefault(mid, set())
            for group in dst_set:
                self._by_group.setdefault(group, set()).add(mid)
        for before, after in payload["edges"]:
            self.successors[before].add(after)
            self.predecessors[after].add(before)

    def _apply_wal_record(self, record: List[Any]) -> None:
        """Replay one WAL record (only meaningful while ``_wal`` is detached)."""
        kind = record[0]
        if kind == _JOURNAL_VERTEX:
            # add_vertex is idempotent and skips forgotten ids, so replaying a
            # pre-snapshot record (possible after a crash between snapshot and
            # WAL reset) is harmless.
            self.add_vertex(record[1], frozenset(record[2]))
        elif kind == _JOURNAL_EDGE:
            self.add_edge(record[1], record[2])
        elif kind == _WAL_DELIVERY:
            self.last_delivered = record[1]
            self._delivered_local.add(record[1])
        elif kind == _WAL_FORGET:
            for victim in record[1]:
                self._remove_vertex(victim)
            self._forgotten.update(record[1])
        elif kind == _WAL_DELTA:
            # Batched merge: replay through the idempotent per-entry path
            # (no WAL attached during replay, so nothing is re-logged).
            for mid, dst in record[1]:
                self.add_vertex(mid, frozenset(dst))
            for before, after in record[2]:
                self.add_edge(before, after)
        else:
            raise ValueError(f"unknown history WAL record kind: {kind!r}")

    @classmethod
    def recover(
        cls,
        storage: StorageLike,
        name: str,
        snapshot_min_wal_records: int = SNAPSHOT_MIN_WAL_RECORDS,
    ) -> "History":
        """Rebuild a history from ``storage``: restore snapshot, replay WAL.

        The returned history has the storage attached, so it keeps journaling
        where the crashed incarnation left off.  Its in-memory change journal
        restarts at the snapshot version; descendants' diff watermarks from a
        previous incarnation simply fall below ``journal_base`` and receive
        one full live snapshot on their next diff (overshipping is safe:
        merges are idempotent and forgotten ids are filtered).
        """
        history = cls()
        payload = storage.read_snapshot(name)
        if payload is not None:
            history._restore_snapshot(payload)
        wal = storage.wal(name + ".journal")
        for record in wal.records():
            history._apply_wal_record(record)
        history._storage = storage
        history._store_name = name
        history._snapshot_min = snapshot_min_wal_records
        history._wal = wal
        return history

    # ----------------------------------------------------------------- export
    def full_delta(self) -> HistoryDelta:
        """Snapshot of the entire history as a delta (tests, bootstrap)."""
        return HistoryDelta(
            vertices=tuple((mid, dst) for mid, dst in self.destinations.items()),
            edges=tuple(self.edges()),
            last_delivered=self.last_delivered,
        )


class HistoryDiffTracker:
    """Tracks which part of the local history each descendant already knows.

    Implements ``diff-hst`` (§4.2 line 11 and §4.3) as a *watermark* over the
    history's change journal: for each descendant the tracker remembers the
    journal sequence number it has shipped up to; a new delta is the journal
    slice past that watermark (:meth:`History.changes_since`), so computing a
    diff costs O(new entries) instead of rescanning every vertex and
    re-materializing every edge.  After garbage collection the journal is
    compacted up to the lowest watermark, so it does not grow without bound.
    """

    def __init__(self) -> None:
        #: descendant -> journal sequence number shipped so far.
        self._watermarks: Dict[GroupId, int] = {}
        #: descendant -> vertex ids shipped so far (introspection/debugging
        #: only; the diff computation never consults it).
        self._sent_vertices: Dict[GroupId, Set[str]] = {}
        #: descendant -> packed snapshots shipped on the cold path.  The
        #: snapshot object is shared with the history's cache, so recording a
        #: cold sync is O(1); :meth:`sent_to` flattens lazily.
        self._sent_snapshots: Dict[GroupId, List[HistorySnapshot]] = {}
        #: ids garbage-collected after a snapshot shipped them (subtracted
        #: lazily in :meth:`sent_to`; empty while no cold sync happened).
        self._forgotten_sent: Set[str] = set()

    def diff_for(self, descendant: GroupId, history: History) -> HistoryDelta:
        """Compute the delta for ``descendant`` and advance its watermark."""
        watermark = self._watermarks.get(descendant, 0)
        vertices, edges, snapshot, version = history.changes_since(watermark)
        self._watermarks[descendant] = version
        if not vertices and not edges and snapshot is None:
            return EMPTY_DELTA
        sent_v = self._sent_vertices.setdefault(descendant, set())
        if snapshot is not None:
            self._sent_snapshots.setdefault(descendant, []).append(snapshot)
        sent_v.update(mid for mid, _ in vertices)
        return HistoryDelta(
            vertices=vertices,
            edges=edges,
            last_delivered=history.last_delivered,
            seq=version,
            snapshot=snapshot,
        )

    #: Retained journal entries are capped at ``_JOURNAL_SLACK × live size``
    #: (plus a small constant) at every :meth:`forget`; see below.
    _JOURNAL_SLACK = 2
    _JOURNAL_MIN = 64

    def forget(self, msg_ids: Iterable[str], history: Optional[History] = None) -> int:
        """Drop bookkeeping for garbage-collected messages.

        O(victims): the per-descendant sets shed the victims by difference and
        the watermarks stay valid as-is (they are absolute sequence numbers).
        When ``history`` is provided its journal is compacted up to the lowest
        watermark — entries every descendant has already seen can never appear
        in a future diff.  A descendant this group has stopped sending to
        must not pin the journal forever, so compaction additionally enforces
        a cap proportional to the *live* history size; a descendant whose
        watermark falls below the compacted base simply receives a full live
        snapshot on its next diff (overshipping is safe: merges are idempotent
        and forgotten ids are filtered).  Returns the number of journal
        entries dropped.
        """
        victims = set(msg_ids)
        for sent_v in self._sent_vertices.values():
            sent_v -= victims
        if self._sent_snapshots:
            self._forgotten_sent |= victims
        if history is None:
            return 0
        floor = min(self._watermarks.values(), default=history.version)
        cap = self._JOURNAL_SLACK * (len(history) + history.num_edges) + self._JOURNAL_MIN
        floor = max(floor, history.version - cap)
        return history.compact_journal(floor)

    def watermark(self, descendant: GroupId) -> int:
        """Journal sequence shipped to ``descendant`` so far (introspection)."""
        return self._watermarks.get(descendant, 0)

    def sent_to(self, descendant: GroupId) -> Set[str]:
        """Vertex ids already shipped to ``descendant`` (introspection)."""
        sent = set(self._sent_vertices.get(descendant, ()))
        for snapshot in self._sent_snapshots.get(descendant, ()):
            sent.update(snapshot.ids)
        return sent - self._forgotten_sent
