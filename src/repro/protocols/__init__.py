"""Atomic multicast protocols: the shared interface and the two baselines.

FlexCast itself (the paper's contribution) lives in :mod:`repro.core.flexcast`
and is re-exported here so all three protocols can be imported from one place.
"""

from ..core.flexcast import FlexCastGroup, FlexCastProtocol
from .base import (
    AtomicMulticastGroup,
    AtomicMulticastProtocol,
    DeliveryRecord,
    DeliverySink,
    ProtocolError,
    RecordingSink,
)
from .hierarchical import HierarchicalGroup, HierarchicalProtocol
from .skeen import SkeenGroup, SkeenProtocol

__all__ = [
    "AtomicMulticastGroup",
    "AtomicMulticastProtocol",
    "DeliveryRecord",
    "DeliverySink",
    "ProtocolError",
    "RecordingSink",
    "FlexCastGroup",
    "FlexCastProtocol",
    "HierarchicalGroup",
    "HierarchicalProtocol",
    "SkeenGroup",
    "SkeenProtocol",
]
