"""Hierarchical baseline: ByzCast-style tree atomic multicast (non-genuine).

Paper §3 and §5.1: hierarchical protocols restrict communication to a tree
overlay.  A multicast message is first sent to the lowest common ancestor of
its destinations in the tree (worst case the root), is ordered there, and then
flows down the tree, being ordered by every group it traverses, until it
reaches all destinations.  The key invariant is that lower groups preserve the
order induced by higher groups, which holds here because:

* each group processes (orders) incoming messages in arrival order, and
* channels are FIFO, so a child sees its parent's messages in the parent's
  order.

The protocol is simple and needs little per-group knowledge (only parent and
children), but it is **not genuine**: a group that is on the dissemination
path but not in ``m.dst`` still receives and orders ``m``.  That extra traffic
is the *communication overhead* the paper quantifies in Figures 1 and 9; this
implementation counts it explicitly (``payload_received`` vs ``delivered``).

ByzCast additionally tolerates Byzantine failures inside groups; with the
single-process groups used in the evaluation none of that machinery is
exercised, so this faithful crash-stop variant is the right baseline.
"""

from __future__ import annotations

from typing import Hashable, List, Set

from ..overlay.base import GroupId
from ..overlay.tree import TreeOverlay
from ..core.message import ClientRequest, Envelope, Message, TreeForward
from ..sim.transport import Transport
from .base import (
    AtomicMulticastGroup,
    AtomicMulticastProtocol,
    DeliverySink,
    ProtocolError,
)


class HierarchicalGroup(AtomicMulticastGroup):
    """One group of the tree-based protocol."""

    def __init__(
        self,
        group_id: GroupId,
        overlay: TreeOverlay,
        transport: Transport,
        sink: DeliverySink,
    ) -> None:
        super().__init__(group_id, transport, sink)
        self.overlay = overlay
        #: Local total order: every message this group ordered, in order.
        self.local_sequence: List[str] = []
        #: Ids already ordered here (guards against duplicate forwards).
        self._ordered: Set[str] = set()
        #: Payload messages received (the denominator of the overhead metric).
        self.payload_received = 0
        self.stats = {"forwarded": 0}

    # ------------------------------------------------------------ entry points
    def on_client_request(self, message: Message) -> None:
        expected_entry = self.overlay.lca(message.dst)
        if expected_entry != self.group_id:
            raise ProtocolError(
                f"client sent {message.msg_id} to {self.group_id}, "
                f"but its tree lca is {expected_entry}"
            )
        self.payload_received += 1
        self._order(message)

    def on_envelope(self, sender: Hashable, envelope: Envelope) -> None:
        if isinstance(envelope, ClientRequest):
            self.on_client_request(envelope.message)
        elif isinstance(envelope, TreeForward):
            self.payload_received += 1
            self._order(envelope.message)
        else:
            raise ProtocolError(
                f"hierarchical group got unexpected envelope {envelope!r}"
            )

    # ---------------------------------------------------------------- algorithm
    def _order(self, message: Message) -> None:
        """Order ``message`` locally, deliver it if addressed here, and push it
        toward the destinations below us in the tree."""
        if message.msg_id in self._ordered:
            return
        self._ordered.add(message.msg_id)
        self.local_sequence.append(message.msg_id)

        if self.group_id in message.dst:
            self.deliver(message)

        for child in self.overlay.next_hops(self.group_id, message.dst):
            self.send(
                child,
                TreeForward(message=message, sequence=len(self.local_sequence)),
            )
            self.stats["forwarded"] += 1

    # --------------------------------------------------------------- overhead
    def communication_overhead(self) -> float:
        """Per-group overhead as defined in §5.8.

        ``1 - delivered / received`` over payload messages; 0.0 when the group
        received nothing (leaves in quiet runs).
        """
        if self.payload_received == 0:
            return 0.0
        return 1.0 - (self.delivered_count / self.payload_received)


class HierarchicalProtocol(AtomicMulticastProtocol):
    """Deployment descriptor for the hierarchical (tree) baseline."""

    name = "Hierarchical"
    genuine = False

    def __init__(self, overlay: TreeOverlay) -> None:
        if not isinstance(overlay, TreeOverlay):
            raise TypeError("the hierarchical protocol requires a tree overlay")
        super().__init__(overlay)

    def create_group(
        self, group_id: GroupId, transport: Transport, sink: DeliverySink
    ) -> HierarchicalGroup:
        return HierarchicalGroup(group_id, self.overlay, transport, sink)

    def entry_groups(self, message: Message) -> List[GroupId]:
        """Clients submit a message to the lca of its destinations in the tree
        (which, unlike FlexCast's lca, may not be a destination at all)."""
        self.validate_message(message)
        return [self.overlay.lca(message.dst)]
