"""Distributed baseline: Skeen's genuine atomic multicast.

Paper §3 and §5.1: the "Distributed" protocol in the evaluation is Skeen's
classic timestamp-based algorithm, because with single-process groups the
modern descendants (FastCast, WhiteBox, RamCast, …) all behave like it.

Algorithm (for a message ``m`` multicast to groups ``m.dst``):

1. the client sends ``m`` to *every* destination group;
2. each destination assigns ``m`` a local logical timestamp and sends it to
   every other destination of ``m`` (one communication step between any two
   destinations — the protocol assumes a fully connected overlay);
3. when a destination holds local timestamps from *all* destinations, the
   final timestamp of ``m`` is their maximum;
4. messages are delivered in final-timestamp order; a message with a final
   timestamp can only be delivered once no pending message could still obtain
   a smaller final timestamp (this wait is the source of the *convoy effect*
   discussed in the paper).

The protocol is genuine (only destinations exchange messages) and delivers in
two communication steps after the client's send, which is optimal.

The timestamp machinery itself — clock, proposal max-merge, the convoy-wait
delivery gate — lives in :class:`repro.core.timestamps.TimestampAuthority`,
shared with FlexCast's hybrid mode so both deployments run one tested
implementation; this module only adds the wire protocol around it.
"""

from __future__ import annotations

from typing import Dict, Hashable, List

from ..core.message import ClientRequest, Envelope, Message, SkeenPropose, SkeenTimestamp
from ..core.timestamps import TimestampAuthority
from ..overlay.base import GroupId, Overlay
from ..sim.transport import Transport
from .base import (
    AtomicMulticastGroup,
    AtomicMulticastProtocol,
    DeliverySink,
    ProtocolError,
)

__all__ = ["SkeenGroup", "SkeenProtocol", "TimestampAuthority"]


class SkeenGroup(AtomicMulticastGroup):
    """One destination group running Skeen's algorithm."""

    def __init__(
        self,
        group_id: GroupId,
        overlay: Overlay,
        transport: Transport,
        sink: DeliverySink,
    ) -> None:
        super().__init__(group_id, transport, sink)
        self.overlay = overlay
        #: Timestamp state: Lamport clock, proposals, convoy-wait gate.
        self.authority = TimestampAuthority(group_id)
        #: msg_id -> message, for proposed-but-undelivered messages.
        self._messages: Dict[str, Message] = {}
        self.stats = {"proposals_sent": 0, "timestamps_received": 0}

    @property
    def clock(self) -> int:
        """The group's logical clock (exposed for tests/diagnostics)."""
        return self.authority.clock

    # ------------------------------------------------------------ entry points
    def on_client_request(self, message: Message) -> None:
        if self.group_id not in message.dst:
            raise ProtocolError(
                f"group {self.group_id} is not a destination of {message.msg_id}"
            )
        self._propose(message)

    def on_envelope(self, sender: Hashable, envelope: Envelope) -> None:
        if isinstance(envelope, (ClientRequest, SkeenPropose)):
            self.on_client_request(envelope.message)
        elif isinstance(envelope, SkeenTimestamp):
            self._on_timestamp(envelope)
        else:
            raise ProtocolError(f"Skeen group got unexpected envelope {envelope!r}")

    # ---------------------------------------------------------------- algorithm
    def _propose(self, message: Message) -> None:
        if self.has_delivered(message.msg_id):
            return  # duplicate submission of a resolved message
        local_timestamp = self.authority.propose(message.msg_id, message.dst)
        if local_timestamp is None:
            return  # duplicate submission of a pending message
        self._messages[message.msg_id] = message
        self.stats["proposals_sent"] += 1
        for dest in message.dst:
            if dest == self.group_id:
                continue
            self.send(
                dest,
                SkeenTimestamp(
                    msg_id=message.msg_id,
                    timestamp=local_timestamp,
                    from_group=self.group_id,
                ),
            )
        self._try_deliver()

    def _on_timestamp(self, envelope: SkeenTimestamp) -> None:
        self.stats["timestamps_received"] += 1
        if self.has_delivered(envelope.msg_id):
            # Late duplicate for a delivered message: advance the clock
            # (Lamport receive rule) without touching per-message state —
            # the authority's entry was dropped at delivery (see
            # _try_deliver), so observe() would re-buffer it as an early
            # proposal that nothing ever cleans up.
            self.authority.clock = max(self.authority.clock, envelope.timestamp)
            return
        self.authority.observe(envelope.msg_id, envelope.from_group, envelope.timestamp)
        self._try_deliver()

    def _try_deliver(self) -> None:
        """Deliver decided messages whose timestamp can no longer be undercut."""
        while True:
            msg_id = self.authority.next_deliverable()
            if msg_id is None:
                return
            self.authority.complete(msg_id)
            # The base class's delivered-record is this protocol's duplicate
            # guard, so the authority's completed-memory is shed immediately
            # and its state stays O(pending) for the group's lifetime
            # (FlexCast, by contrast, sheds it on flush GC).
            self.authority.forget((msg_id,))
            self.deliver(self._messages.pop(msg_id))

    # --------------------------------------------------------------- inspection
    def pending_count(self) -> int:
        return self.authority.pending_count()


class SkeenProtocol(AtomicMulticastProtocol):
    """Deployment descriptor for the distributed (Skeen) baseline."""

    name = "Distributed"
    genuine = True

    def __init__(self, overlay: Overlay) -> None:
        super().__init__(overlay)

    def create_group(
        self, group_id: GroupId, transport: Transport, sink: DeliverySink
    ) -> SkeenGroup:
        return SkeenGroup(group_id, self.overlay, transport, sink)

    def entry_groups(self, message: Message) -> List[GroupId]:
        """The client sends the message to every destination group."""
        self.validate_message(message)
        return sorted(message.dst)
