"""Distributed baseline: Skeen's genuine atomic multicast.

Paper §3 and §5.1: the "Distributed" protocol in the evaluation is Skeen's
classic timestamp-based algorithm, because with single-process groups the
modern descendants (FastCast, WhiteBox, RamCast, …) all behave like it.

Algorithm (for a message ``m`` multicast to groups ``m.dst``):

1. the client sends ``m`` to *every* destination group;
2. each destination assigns ``m`` a local logical timestamp and sends it to
   every other destination of ``m`` (one communication step between any two
   destinations — the protocol assumes a fully connected overlay);
3. when a destination holds local timestamps from *all* destinations, the
   final timestamp of ``m`` is their maximum;
4. messages are delivered in final-timestamp order; a message with a final
   timestamp can only be delivered once no pending message could still obtain
   a smaller final timestamp (this wait is the source of the *convoy effect*
   discussed in the paper).

The protocol is genuine (only destinations exchange messages) and delivers in
two communication steps after the client's send, which is optimal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set, Tuple

from ..overlay.base import CompleteGraphOverlay, GroupId, Overlay
from ..core.message import ClientRequest, Envelope, Message, SkeenPropose, SkeenTimestamp
from ..sim.transport import Transport
from .base import (
    AtomicMulticastGroup,
    AtomicMulticastProtocol,
    DeliverySink,
    ProtocolError,
)


@dataclass
class _PendingSkeen:
    """State of one undelivered message at one destination group."""

    message: Message
    #: Local timestamp proposed by this group.
    local_timestamp: int
    #: Timestamps received so far, keyed by proposing group.
    proposals: Dict[GroupId, int] = field(default_factory=dict)
    #: Final (maximum) timestamp; ``None`` while proposals are missing.
    final_timestamp: Optional[int] = None

    @property
    def decided(self) -> bool:
        return self.final_timestamp is not None

    def effective_timestamp(self) -> Tuple[int, str]:
        """Sort key used for delivery: final timestamp if decided, otherwise
        the local proposal (a lower bound on the final timestamp)."""
        ts = self.final_timestamp if self.decided else self.local_timestamp
        return (ts, self.message.msg_id)


class SkeenGroup(AtomicMulticastGroup):
    """One destination group running Skeen's algorithm."""

    def __init__(
        self,
        group_id: GroupId,
        overlay: Overlay,
        transport: Transport,
        sink: DeliverySink,
    ) -> None:
        super().__init__(group_id, transport, sink)
        self.overlay = overlay
        #: Lamport-style logical clock used to propose timestamps.
        self.clock = 0
        self.pending: Dict[str, _PendingSkeen] = {}
        #: Proposals that arrived before the client request (keyed by message id).
        self._early_proposals: Dict[str, Dict[GroupId, int]] = {}
        self.stats = {"proposals_sent": 0, "timestamps_received": 0}

    # ------------------------------------------------------------ entry points
    def on_client_request(self, message: Message) -> None:
        if self.group_id not in message.dst:
            raise ProtocolError(
                f"group {self.group_id} is not a destination of {message.msg_id}"
            )
        self._propose(message)

    def on_envelope(self, sender: Hashable, envelope: Envelope) -> None:
        if isinstance(envelope, (ClientRequest, SkeenPropose)):
            self.on_client_request(envelope.message)
        elif isinstance(envelope, SkeenTimestamp):
            self._on_timestamp(envelope)
        else:
            raise ProtocolError(f"Skeen group got unexpected envelope {envelope!r}")

    # ---------------------------------------------------------------- algorithm
    def _propose(self, message: Message) -> None:
        if message.msg_id in self.pending or self.has_delivered(message.msg_id):
            return  # duplicate submission
        self.clock += 1
        entry = _PendingSkeen(message=message, local_timestamp=self.clock)
        entry.proposals[self.group_id] = self.clock
        self.pending[message.msg_id] = entry
        self.stats["proposals_sent"] += 1
        for dest in message.dst:
            if dest == self.group_id:
                continue
            self.send(
                dest,
                SkeenTimestamp(
                    msg_id=message.msg_id,
                    timestamp=self.clock,
                    from_group=self.group_id,
                ),
            )
        self._maybe_decide(entry)
        self._try_deliver()

    def _on_timestamp(self, envelope: SkeenTimestamp) -> None:
        self.stats["timestamps_received"] += 1
        self.clock = max(self.clock, envelope.timestamp)
        entry = self.pending.get(envelope.msg_id)
        if entry is None:
            if self.has_delivered(envelope.msg_id):
                return
            # The timestamp raced ahead of the client request (possible when a
            # remote destination is closer to the client than we are).  Buffer
            # it by creating a placeholder once the request arrives: we simply
            # stash the proposal under a synthetic entry keyed by id.
            self._early_proposals.setdefault(envelope.msg_id, {})[
                envelope.from_group
            ] = envelope.timestamp
            return
        entry.proposals[envelope.from_group] = envelope.timestamp
        self._maybe_decide(entry)
        self._try_deliver()

    def _maybe_decide(self, entry: _PendingSkeen) -> None:
        # Merge any proposals that arrived before the request itself.
        early = self._early_proposals.pop(entry.message.msg_id, None)
        if early:
            entry.proposals.update(early)
        if entry.decided:
            return
        if set(entry.proposals) >= set(entry.message.dst):
            entry.final_timestamp = max(entry.proposals.values())
            self.clock = max(self.clock, entry.final_timestamp)

    def _try_deliver(self) -> None:
        """Deliver decided messages whose timestamp can no longer be undercut."""
        progress = True
        while progress and self.pending:
            progress = False
            candidate = min(self.pending.values(), key=_PendingSkeen.effective_timestamp)
            if not candidate.decided:
                break
            # Every other pending message (decided or not) must have a larger
            # effective timestamp, otherwise it could still be ordered first.
            others = [
                e for e in self.pending.values() if e.message.msg_id != candidate.message.msg_id
            ]
            if any(
                e.effective_timestamp() <= candidate.effective_timestamp() for e in others
            ):
                break
            del self.pending[candidate.message.msg_id]
            self.deliver(candidate.message)
            progress = True

    # --------------------------------------------------------------- inspection
    def pending_count(self) -> int:
        return len(self.pending)


class SkeenProtocol(AtomicMulticastProtocol):
    """Deployment descriptor for the distributed (Skeen) baseline."""

    name = "Distributed"
    genuine = True

    def __init__(self, overlay: Overlay) -> None:
        super().__init__(overlay)

    def create_group(
        self, group_id: GroupId, transport: Transport, sink: DeliverySink
    ) -> SkeenGroup:
        return SkeenGroup(group_id, self.overlay, transport, sink)

    def entry_groups(self, message: Message) -> List[GroupId]:
        """The client sends the message to every destination group."""
        self.validate_message(message)
        return sorted(message.dst)
