"""Common interface implemented by every atomic multicast protocol.

The experiment harness (``repro.experiments.runner``), the asyncio runtime and
the correctness checker all talk to protocols exclusively through these
abstractions, so FlexCast, Skeen's distributed protocol and the hierarchical
baseline are interchangeable in every benchmark.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional

from ..obs import Observability
from ..overlay.base import GroupId, Overlay
from ..sim.transport import Transport
from ..core.message import Envelope, Message

#: Callback invoked when a group delivers an application message:
#: ``sink(group_id, message)``.
DeliverySink = Callable[[GroupId, Message], None]


class ProtocolError(RuntimeError):
    """Raised when a protocol invariant is violated (indicates a bug)."""


@dataclass
class DeliveryRecord:
    """One delivery event, as recorded by :class:`RecordingSink`."""

    group: GroupId
    message: Message
    order: int
    time: float = 0.0


class RecordingSink:
    """Delivery sink that records the per-group delivery sequences.

    Used by tests and by the correctness checker to validate the atomic
    multicast properties (prefix order, acyclic order, integrity, ...).
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._clock = clock
        self.records: List[DeliveryRecord] = []
        self.per_group: Dict[GroupId, List[Message]] = {}

    def __call__(self, group: GroupId, message: Message) -> None:
        order = len(self.per_group.setdefault(group, []))
        self.per_group[group].append(message)
        self.records.append(
            DeliveryRecord(
                group=group,
                message=message,
                order=order,
                time=self._clock() if self._clock else 0.0,
            )
        )

    def sequence(self, group: GroupId) -> List[str]:
        """Delivery order of message ids at ``group``."""
        return [m.msg_id for m in self.per_group.get(group, [])]

    def delivered_ids(self, group: GroupId) -> set:
        return set(self.sequence(group))

    def count(self, group: Optional[GroupId] = None) -> int:
        if group is None:
            return len(self.records)
        return len(self.per_group.get(group, []))


class AtomicMulticastGroup(ABC):
    """One group (replica set abstracted to a single logical process).

    Subclasses implement the actual ordering logic.  A group receives:

    * client requests (``on_client_request``) when it is an entry point of a
      multicast message, and
    * protocol envelopes from other groups (``on_envelope``).

    When the group decides to deliver a message it must call
    ``self.deliver(message)``, which forwards to the delivery sink exactly
    once per message (integrity is enforced here for all protocols).
    """

    def __init__(
        self,
        group_id: GroupId,
        transport: Transport,
        sink: DeliverySink,
    ) -> None:
        self.group_id = group_id
        self.transport = transport
        self._sink = sink
        self._delivered_ids: set = set()
        self.delivered_count = 0
        #: Observability hub (``None`` = uninstrumented; see repro.obs).
        self.obs: Optional[Observability] = None

    # --------------------------------------------------------- observability
    def attach_obs(self, obs: Observability) -> None:
        """Attach an observability hub to this group (optional, idempotent).

        The base implementation registers the delivery counter every
        protocol shares; subclasses extend it with their own instruments.
        Metrics are pull-based (sampled at scrape time from state the
        group already maintains), so attaching costs the hot path
        nothing by itself.
        """
        self.obs = obs
        labels = {"group": str(self.group_id)}
        obs.registry.counter(
            "group_delivered_total",
            "Application messages delivered by this group.",
            labels,
            fn=lambda: self.delivered_count,
        )

    # ------------------------------------------------------------- interface
    @abstractmethod
    def on_client_request(self, message: Message) -> None:
        """Handle a multicast message submitted directly to this group."""

    @abstractmethod
    def on_envelope(self, sender: Hashable, envelope: Envelope) -> None:
        """Handle a protocol envelope from another group."""

    # -------------------------------------------------------------- delivery
    def deliver(self, message: Message) -> None:
        """Deliver ``message`` to the application exactly once."""
        if message.msg_id in self._delivered_ids:
            raise ProtocolError(
                f"group {self.group_id} attempted to deliver {message.msg_id} twice"
            )
        if self.group_id not in message.dst:
            raise ProtocolError(
                f"group {self.group_id} delivered {message.msg_id} "
                f"but is not a destination {sorted(message.dst)}"
            )
        self._delivered_ids.add(message.msg_id)
        self.delivered_count += 1
        self._sink(self.group_id, message)

    def has_delivered(self, msg_id: str) -> bool:
        return msg_id in self._delivered_ids

    # ------------------------------------------------------------ networking
    def send(self, dst: Hashable, envelope: Envelope) -> None:
        """Ship an envelope to another node through the transport."""
        self.transport.send(dst, envelope)


class AtomicMulticastProtocol(ABC):
    """A deployable protocol: knows its overlay, builds groups, routes clients.

    ``entry_groups(message)`` tells a client where to submit a message:

    * FlexCast / hierarchical — the single lca group;
    * Skeen's distributed protocol — every destination group.
    """

    #: Human-readable protocol name used in reports ("FlexCast", ...).
    name: str = "abstract"
    #: Whether the protocol is genuine (§2.2 Minimality).
    genuine: bool = False

    def __init__(self, overlay: Overlay) -> None:
        self.overlay = overlay

    @property
    def groups(self) -> List[GroupId]:
        return self.overlay.groups

    @abstractmethod
    def create_group(
        self,
        group_id: GroupId,
        transport: Transport,
        sink: DeliverySink,
    ) -> AtomicMulticastGroup:
        """Instantiate the protocol logic for one group."""

    @abstractmethod
    def entry_groups(self, message: Message) -> List[GroupId]:
        """Groups a client must send ``message`` to."""

    def validate_message(self, message: Message) -> None:
        """Reject messages addressed outside the overlay."""
        self.overlay.validate_destinations(message.dst)

    def describe(self) -> str:
        return f"{self.name} on {self.overlay.describe()}"
