"""Plain-text report formatting.

Benchmarks and examples print tables in the same layout as the paper
(Tables 2-4) so measured values can be compared line by line; these helpers
keep the formatting in one place.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence

from .collector import NodeTrafficReport
from .overhead import OverheadReport


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a fixed-width text table (no external dependencies)."""
    rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def format_latency_percentiles(
    label: str,
    table: Mapping[int, Mapping[float, float]],
    ps: Sequence[float] = (90, 95, 99),
) -> str:
    """One row of the paper's latency tables (Tables 2 and 3).

    ``table`` maps destination rank -> {percentile -> latency ms}.
    """
    headers = ["config"]
    for rank in sorted(table):
        for p in ps:
            headers.append(f"dst{rank}-{int(p)}p")
    row: List[object] = [label]
    for rank in sorted(table):
        for p in ps:
            row.append(f"{table[rank].get(p, float('nan')):.1f}")
    return format_table(headers, [row])


def format_latency_comparison(
    tables: Mapping[str, Mapping[int, Mapping[float, float]]],
    ps: Sequence[float] = (90, 95, 99),
    ranks: Sequence[int] = (1, 2, 3),
) -> str:
    """Several configurations side by side (whole Table 2 / Table 3)."""
    headers = ["config"] + [f"dst{r}-{int(p)}p" for r in ranks for p in ps]
    rows = []
    for label, table in tables.items():
        row: List[object] = [label]
        for rank in ranks:
            for p in ps:
                value = table.get(rank, {}).get(p)
                row.append("-" if value is None else f"{value:.1f}")
        rows.append(row)
    return format_table(headers, rows)

def format_overhead_report(label: str, report: OverheadReport) -> str:
    """Figure 1 / Figure 9 as text: per-group overhead plus aggregates."""
    rows = [
        [row["group"], row["delivered"], row["received"], f"{row['overhead_percent']:.1f}%"]
        for row in report.as_rows()
    ]
    table = format_table(["group", "delivered", "received", "overhead"], rows)
    footer = (
        f"{label}: mean={report.mean_percent:.2f}% "
        f"(stdev {report.stdev_percent:.2f}) max={report.max_percent:.0f}%"
    )
    return table + "\n" + footer


def format_traffic_report(label: str, rows: Sequence[NodeTrafficReport]) -> str:
    """Figure 8 as text: per-node received messages/s, avg size, KB/s."""
    table_rows = [
        [
            r.node,
            f"{r.messages_per_second:.1f}",
            f"{r.average_message_bytes:.0f}",
            f"{r.kbytes_per_second:.1f}",
        ]
        for r in rows
    ]
    return (
        f"{label}\n"
        + format_table(["node", "msgs/s", "avg bytes", "KB/s"], table_rows)
    )


def format_throughput_series(series: Mapping[str, Mapping[int, float]]) -> str:
    """Figure 6 as text: throughput (ops/s) per protocol per client count."""
    client_counts = sorted({c for table in series.values() for c in table})
    headers = ["protocol"] + [str(c) for c in client_counts]
    rows = []
    for protocol, table in series.items():
        rows.append(
            [protocol]
            + [f"{table.get(c, float('nan')):.0f}" for c in client_counts]
        )
    return format_table(headers, rows)
