"""Collecting and reporting the paper's evaluation metrics.

One module holds the whole raw-events-to-text pipeline (the package surface
is ``repro.metrics``; import from there):

* :class:`LatencyCollector` — accumulates completed transactions and answers
  the per-destination latency / throughput queries behind Figures 5-7 and
  Tables 2-3.  The paper discards the first and last 10% of each run to
  exclude warm-up and cool-down noise; :meth:`LatencyCollector.trimmed`
  implements the same rule.
* :func:`traffic_report` / :class:`NodeTrafficReport` — per-node messages/s,
  average message size and KB/s from the network's byte counters (Figure 8).
* the ``format_*`` helpers — fixed-width text tables in the same layout as
  the paper so measured values can be compared line by line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..obs import Observability
from ..overlay.base import GroupId
from ..sim.network import NodeTraffic
from ..workload.clients import CompletedTransaction
from .overhead import OverheadReport
from .stats import cdf_points, percentiles


class LatencyCollector:
    """Accumulates completed transactions and answers latency queries.

    With an observability hub attached (:meth:`attach_obs`), every recorded
    transaction is emitted on the hub's delivery feed
    (:meth:`~repro.obs.Observability.emit_delivery`) — that is the
    delivery-path signal the workload monitor
    (:mod:`repro.reconfig.monitor`) subscribes to.
    """

    def __init__(self) -> None:
        self.transactions: List[CompletedTransaction] = []
        self._obs: Optional[Observability] = None

    # ------------------------------------------------------------- collection
    def attach_obs(self, obs: Observability) -> None:
        """Attach an observability hub: recorded txns feed its delivery feed."""
        self._obs = obs
        obs.registry.counter(
            "collector_transactions_total",
            "Completed transactions recorded by the latency collector.",
            fn=lambda: len(self.transactions),
        )

    def record(self, txn: CompletedTransaction) -> None:
        self.transactions.append(txn)
        if self._obs is not None:
            # Transactions predating the ``destination_set`` field (or with
            # an empty one) are skipped rather than guessed at.
            dst = getattr(txn, "destination_set", frozenset())
            if dst:
                self._obs.emit_delivery(txn.home, frozenset(dst), txn.completed_at)

    def __len__(self) -> int:
        return len(self.transactions)

    # ---------------------------------------------------------------- trimming
    def trimmed(self, warmup_fraction: float = 0.10) -> "LatencyCollector":
        """Return a collector holding only the middle of the run.

        Drops the transactions completed in the first and last
        ``warmup_fraction`` of the measured time span (the paper's 10%).
        """
        if not self.transactions or warmup_fraction <= 0.0:
            return self
        times = [t.completed_at for t in self.transactions]
        start, end = min(times), max(times)
        span = end - start
        lo = start + warmup_fraction * span
        hi = end - warmup_fraction * span
        trimmed = LatencyCollector()
        trimmed.transactions = [
            t for t in self.transactions if lo <= t.completed_at <= hi
        ]
        # Degenerate tiny runs: keep the original data rather than nothing.
        if not trimmed.transactions:
            trimmed.transactions = list(self.transactions)
        return trimmed

    # ----------------------------------------------------------------- queries
    def global_transactions(self) -> List[CompletedTransaction]:
        return [t for t in self.transactions if t.is_global]

    def latencies_for_destination(self, rank: int, global_only: bool = True) -> List[float]:
        """Latency samples for the ``rank``-th response (1-based).

        Only transactions that actually had at least ``rank`` destinations
        contribute, mirroring how the paper separates 1st/2nd/3rd destination
        charts.
        """
        if rank < 1:
            raise ValueError("destination rank is 1-based")
        source = self.global_transactions() if global_only else self.transactions
        return [
            t.latencies_by_arrival[rank - 1]
            for t in source
            if len(t.latencies_by_arrival) >= rank
        ]

    def completion_latencies(self, global_only: bool = False) -> List[float]:
        """End-to-end latency (last response) for each transaction."""
        source = self.global_transactions() if global_only else self.transactions
        return [t.latencies_by_arrival[-1] for t in source if t.latencies_by_arrival]

    def percentile_table(
        self, ranks: Sequence[int] = (1, 2, 3), ps: Sequence[float] = (90, 95, 99)
    ) -> Dict[int, Dict[float, float]]:
        """The paper's latency tables: {rank: {percentile: value_ms}}.

        Ranks with no samples are omitted (e.g. no 3-destination messages were
        generated in a short run).
        """
        table: Dict[int, Dict[float, float]] = {}
        for rank in ranks:
            samples = self.latencies_for_destination(rank)
            if samples:
                table[rank] = percentiles(samples, ps)
        return table

    def cdf_for_destination(self, rank: int) -> List[Tuple[float, float]]:
        """Empirical CDF of the ``rank``-th destination latency (Figures 5/7)."""
        return cdf_points(self.latencies_for_destination(rank))

    def throughput_ops_per_sec(self) -> float:
        """Completed transactions per (virtual) second over the observed span."""
        if len(self.transactions) < 2:
            return 0.0
        times = [t.completed_at for t in self.transactions]
        span_ms = max(times) - min(times)
        if span_ms <= 0:
            return 0.0
        return len(self.transactions) / (span_ms / 1000.0)


@dataclass
class NodeTrafficReport:
    """Figure 8 rows for a single node."""

    node: GroupId
    messages_per_second: float
    average_message_bytes: float
    kbytes_per_second: float


def traffic_report(
    traffic: Dict[GroupId, NodeTraffic],
    duration_ms: float,
    nodes: Sequence[GroupId],
) -> List[NodeTrafficReport]:
    """Convert raw byte counters into the paper's per-node traffic metrics."""
    if duration_ms <= 0:
        raise ValueError("duration must be positive")
    seconds = duration_ms / 1000.0
    report = []
    for node in nodes:
        stats = traffic.get(node, NodeTraffic())
        report.append(
            NodeTrafficReport(
                node=node,
                messages_per_second=stats.messages_received / seconds,
                average_message_bytes=stats.average_received_size(),
                kbytes_per_second=stats.bytes_received / 1024.0 / seconds,
            )
        )
    return report


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a fixed-width text table (no external dependencies)."""
    rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def format_latency_percentiles(
    label: str,
    table: Mapping[int, Mapping[float, float]],
    ps: Sequence[float] = (90, 95, 99),
) -> str:
    """One row of the paper's latency tables (Tables 2 and 3).

    ``table`` maps destination rank -> {percentile -> latency ms}.
    """
    headers = ["config"]
    for rank in sorted(table):
        for p in ps:
            headers.append(f"dst{rank}-{int(p)}p")
    row: List[object] = [label]
    for rank in sorted(table):
        for p in ps:
            row.append(f"{table[rank].get(p, float('nan')):.1f}")
    return format_table(headers, [row])


def format_latency_comparison(
    tables: Mapping[str, Mapping[int, Mapping[float, float]]],
    ps: Sequence[float] = (90, 95, 99),
    ranks: Sequence[int] = (1, 2, 3),
) -> str:
    """Several configurations side by side (whole Table 2 / Table 3)."""
    headers = ["config"] + [f"dst{r}-{int(p)}p" for r in ranks for p in ps]
    rows = []
    for label, table in tables.items():
        row: List[object] = [label]
        for rank in ranks:
            for p in ps:
                value = table.get(rank, {}).get(p)
                row.append("-" if value is None else f"{value:.1f}")
        rows.append(row)
    return format_table(headers, rows)

def format_overhead_report(label: str, report: OverheadReport) -> str:
    """Figure 1 / Figure 9 as text: per-group overhead plus aggregates."""
    rows = [
        [row["group"], row["delivered"], row["received"], f"{row['overhead_percent']:.1f}%"]
        for row in report.as_rows()
    ]
    table = format_table(["group", "delivered", "received", "overhead"], rows)
    footer = (
        f"{label}: mean={report.mean_percent:.2f}% "
        f"(stdev {report.stdev_percent:.2f}) max={report.max_percent:.0f}%"
    )
    return table + "\n" + footer


def format_traffic_report(label: str, rows: Sequence[NodeTrafficReport]) -> str:
    """Figure 8 as text: per-node received messages/s, avg size, KB/s."""
    table_rows = [
        [
            r.node,
            f"{r.messages_per_second:.1f}",
            f"{r.average_message_bytes:.0f}",
            f"{r.kbytes_per_second:.1f}",
        ]
        for r in rows
    ]
    return (
        f"{label}\n"
        + format_table(["node", "msgs/s", "avg bytes", "KB/s"], table_rows)
    )


def format_throughput_series(series: Mapping[str, Mapping[int, float]]) -> str:
    """Figure 6 as text: throughput (ops/s) per protocol per client count."""
    client_counts = sorted({c for table in series.values() for c in table})
    headers = ["protocol"] + [str(c) for c in client_counts]
    rows = []
    for protocol, table in series.items():
        rows.append(
            [protocol]
            + [f"{table.get(c, float('nan')):.0f}" for c in client_counts]
        )
    return format_table(headers, rows)
