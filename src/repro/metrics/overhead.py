"""Communication overhead of non-genuine protocols (paper §5.8, Figures 1 and 9).

The paper defines a group's communication overhead as::

    1 - (payload messages delivered by the group / payload messages received)

expressed as a percentage.  Genuine protocols (FlexCast, Skeen) have zero
overhead by construction: a group only ever receives payload messages it must
deliver.  Hierarchical protocols route messages through non-destination inner
groups, which therefore receive more payload messages than they deliver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..overlay.base import GroupId
from .stats import mean, stdev


@dataclass(frozen=True)
class GroupOverhead:
    """Overhead record for one group."""

    group: GroupId
    delivered: int
    received: int

    @property
    def overhead(self) -> float:
        """Overhead as a fraction in [0, 1]."""
        if self.received == 0:
            return 0.0
        return max(0.0, 1.0 - self.delivered / self.received)

    @property
    def overhead_percent(self) -> float:
        return 100.0 * self.overhead


@dataclass(frozen=True)
class OverheadReport:
    """Per-group overhead plus the aggregate statistics of Table 4."""

    per_group: Dict[GroupId, GroupOverhead]

    def overhead_percent(self, group: GroupId) -> float:
        return self.per_group[group].overhead_percent

    @property
    def mean_percent(self) -> float:
        return mean([g.overhead_percent for g in self.per_group.values()])

    @property
    def stdev_percent(self) -> float:
        return stdev([g.overhead_percent for g in self.per_group.values()])

    @property
    def max_percent(self) -> float:
        return max(g.overhead_percent for g in self.per_group.values())

    def groups_sorted(self) -> List[GroupId]:
        return sorted(self.per_group)

    def as_rows(self) -> List[Dict[str, float]]:
        """Rows suitable for text/CSV reports (one row per group)."""
        return [
            {
                "group": g,
                "delivered": self.per_group[g].delivered,
                "received": self.per_group[g].received,
                "overhead_percent": self.per_group[g].overhead_percent,
            }
            for g in self.groups_sorted()
        ]


def compute_overhead(
    delivered_by_group: Dict[GroupId, int],
    received_by_group: Dict[GroupId, int],
    groups: Sequence[GroupId],
) -> OverheadReport:
    """Build an :class:`OverheadReport` from raw delivered/received counters.

    ``received_by_group`` must count *payload* messages only (client requests
    and forwarded application messages), not protocol auxiliaries — matching
    the paper, which focuses on payload messages "as these are typically
    larger than auxiliary messages".
    """
    per_group = {
        g: GroupOverhead(
            group=g,
            delivered=delivered_by_group.get(g, 0),
            received=received_by_group.get(g, 0),
        )
        for g in groups
    }
    return OverheadReport(per_group=per_group)
