"""Small statistics helpers: percentiles, CDFs and summaries.

Implemented without numpy on the hot path so they also work on raw Python
lists coming out of the simulator; numpy is available and used only where it
genuinely helps (none of these datasets are large enough to matter).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple


def percentile(values: Sequence[float], p: float) -> float:
    """The ``p``-th percentile of ``values`` using linear interpolation.

    Matches ``numpy.percentile(..., method="linear")``.  Raises ``ValueError``
    on an empty input, because silently returning 0 would corrupt the latency
    tables.
    """
    if not values:
        raise ValueError("cannot take a percentile of an empty sequence")
    if not 0.0 <= p <= 100.0:
        raise ValueError("percentile must be within [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (p / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return float(ordered[int(rank)])
    fraction = rank - low
    return float(ordered[low] * (1.0 - fraction) + ordered[high] * fraction)


def percentiles(values: Sequence[float], ps: Iterable[float] = (90, 95, 99)) -> Dict[float, float]:
    """Several percentiles at once (the paper reports 90p/95p/99p)."""
    return {p: percentile(values, p) for p in ps}


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("cannot take the mean of an empty sequence")
    return sum(values) / len(values)


def stdev(values: Sequence[float]) -> float:
    """Population standard deviation (the paper reports std dev of overheads)."""
    if not values:
        raise ValueError("cannot take the stdev of an empty sequence")
    m = mean(values)
    return math.sqrt(sum((v - m) ** 2 for v in values) / len(values))


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as (value, cumulative probability) points.

    This is what the paper's latency CDF figures plot; benchmarks emit these
    series so they can be compared against Figures 5 and 7.
    """
    if not values:
        return []
    ordered = sorted(values)
    n = len(ordered)
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]


def cdf_at(values: Sequence[float], threshold: float) -> float:
    """Fraction of values less than or equal to ``threshold``."""
    if not values:
        return 0.0
    return sum(1 for v in values if v <= threshold) / len(values)


@dataclass(frozen=True)
class Summary:
    """Compact distribution summary used in reports and EXPERIMENTS.md."""

    count: int
    mean: float
    p50: float
    p90: float
    p95: float
    p99: float
    minimum: float
    maximum: float

    @staticmethod
    def of(values: Sequence[float]) -> "Summary":
        if not values:
            raise ValueError("cannot summarise an empty sequence")
        return Summary(
            count=len(values),
            mean=mean(values),
            p50=percentile(values, 50),
            p90=percentile(values, 90),
            p95=percentile(values, 95),
            p99=percentile(values, 99),
            minimum=min(values),
            maximum=max(values),
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p90": self.p90,
            "p95": self.p95,
            "p99": self.p99,
            "min": self.minimum,
            "max": self.maximum,
        }
