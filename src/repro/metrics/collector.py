"""Collectors turning raw simulation events into the paper's metrics.

The evaluation needs three kinds of measurements:

* **per-destination latency** — for every completed global transaction, the
  latency of the 1st/2nd/3rd response the client received (Figures 5 and 7,
  Tables 2 and 3);
* **throughput** — completed transactions per second as load increases
  (Figure 6);
* **per-node traffic** — messages/s, average message size and KB/s at every
  node (Figure 8), obtained from the network's byte counters.

The paper discards the first and last 10% of each run to exclude warm-up and
cool-down noise; :class:`LatencyCollector.trimmed` implements the same rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs import Observability
from ..overlay.base import GroupId
from ..sim.network import NodeTraffic
from ..workload.clients import CompletedTransaction
from .stats import Summary, cdf_points, percentiles


class LatencyCollector:
    """Accumulates completed transactions and answers latency queries.

    With an observability hub attached (:meth:`attach_obs`), every recorded
    transaction is emitted on the hub's delivery feed
    (:meth:`~repro.obs.Observability.emit_delivery`) — that is the
    delivery-path signal the workload monitor
    (:mod:`repro.reconfig.monitor`) subscribes to.
    """

    def __init__(self) -> None:
        self.transactions: List[CompletedTransaction] = []
        self._obs: Optional[Observability] = None

    # ------------------------------------------------------------- collection
    def attach_obs(self, obs: Observability) -> None:
        """Attach an observability hub: recorded txns feed its delivery feed."""
        self._obs = obs
        obs.registry.counter(
            "collector_transactions_total",
            "Completed transactions recorded by the latency collector.",
            fn=lambda: len(self.transactions),
        )

    def record(self, txn: CompletedTransaction) -> None:
        self.transactions.append(txn)
        if self._obs is not None:
            # Transactions predating the ``destination_set`` field (or with
            # an empty one) are skipped rather than guessed at.
            dst = getattr(txn, "destination_set", frozenset())
            if dst:
                self._obs.emit_delivery(txn.home, frozenset(dst), txn.completed_at)

    def __len__(self) -> int:
        return len(self.transactions)

    # ---------------------------------------------------------------- trimming
    def trimmed(self, warmup_fraction: float = 0.10) -> "LatencyCollector":
        """Return a collector holding only the middle of the run.

        Drops the transactions completed in the first and last
        ``warmup_fraction`` of the measured time span (the paper's 10%).
        """
        if not self.transactions or warmup_fraction <= 0.0:
            return self
        times = [t.completed_at for t in self.transactions]
        start, end = min(times), max(times)
        span = end - start
        lo = start + warmup_fraction * span
        hi = end - warmup_fraction * span
        trimmed = LatencyCollector()
        trimmed.transactions = [
            t for t in self.transactions if lo <= t.completed_at <= hi
        ]
        # Degenerate tiny runs: keep the original data rather than nothing.
        if not trimmed.transactions:
            trimmed.transactions = list(self.transactions)
        return trimmed

    # ----------------------------------------------------------------- queries
    def global_transactions(self) -> List[CompletedTransaction]:
        return [t for t in self.transactions if t.is_global]

    def latencies_for_destination(self, rank: int, global_only: bool = True) -> List[float]:
        """Latency samples for the ``rank``-th response (1-based).

        Only transactions that actually had at least ``rank`` destinations
        contribute, mirroring how the paper separates 1st/2nd/3rd destination
        charts.
        """
        if rank < 1:
            raise ValueError("destination rank is 1-based")
        source = self.global_transactions() if global_only else self.transactions
        return [
            t.latencies_by_arrival[rank - 1]
            for t in source
            if len(t.latencies_by_arrival) >= rank
        ]

    def completion_latencies(self, global_only: bool = False) -> List[float]:
        """End-to-end latency (last response) for each transaction."""
        source = self.global_transactions() if global_only else self.transactions
        return [t.latencies_by_arrival[-1] for t in source if t.latencies_by_arrival]

    def percentile_table(
        self, ranks: Sequence[int] = (1, 2, 3), ps: Sequence[float] = (90, 95, 99)
    ) -> Dict[int, Dict[float, float]]:
        """The paper's latency tables: {rank: {percentile: value_ms}}.

        Ranks with no samples are omitted (e.g. no 3-destination messages were
        generated in a short run).
        """
        table: Dict[int, Dict[float, float]] = {}
        for rank in ranks:
            samples = self.latencies_for_destination(rank)
            if samples:
                table[rank] = percentiles(samples, ps)
        return table

    def cdf_for_destination(self, rank: int) -> List[Tuple[float, float]]:
        """Empirical CDF of the ``rank``-th destination latency (Figures 5/7)."""
        return cdf_points(self.latencies_for_destination(rank))

    def throughput_ops_per_sec(self) -> float:
        """Completed transactions per (virtual) second over the observed span."""
        if len(self.transactions) < 2:
            return 0.0
        times = [t.completed_at for t in self.transactions]
        span_ms = max(times) - min(times)
        if span_ms <= 0:
            return 0.0
        return len(self.transactions) / (span_ms / 1000.0)

    def summary(self) -> Optional[Summary]:
        latencies = self.completion_latencies()
        return Summary.of(latencies) if latencies else None


@dataclass
class NodeTrafficReport:
    """Figure 8 rows for a single node."""

    node: GroupId
    messages_per_second: float
    average_message_bytes: float
    kbytes_per_second: float


def traffic_report(
    traffic: Dict[GroupId, NodeTraffic],
    duration_ms: float,
    nodes: Sequence[GroupId],
) -> List[NodeTrafficReport]:
    """Convert raw byte counters into the paper's per-node traffic metrics."""
    if duration_ms <= 0:
        raise ValueError("duration must be positive")
    seconds = duration_ms / 1000.0
    report = []
    for node in nodes:
        stats = traffic.get(node, NodeTraffic())
        report.append(
            NodeTrafficReport(
                node=node,
                messages_per_second=stats.messages_received / seconds,
                average_message_bytes=stats.average_received_size(),
                kbytes_per_second=stats.bytes_received / 1024.0 / seconds,
            )
        )
    return report
