"""Measurement substrate: statistics, collection, overhead and reports.

This package is the **one documented surface** for everything that turns
raw runs into numbers — import from ``repro.metrics``, not its submodules.
The main entry points are :class:`LatencyCollector` (per-delivery latency
samples; also the observation feed for the reconfiguration layer's
:class:`~repro.reconfig.monitor.WorkloadMonitor`), :func:`traffic_report`
(per-node byte/envelope accounting behind the Figure 8 traffic numbers),
:func:`compute_overhead` (payload vs protocol bytes, Figures 1/9), the
``format_*`` renderers, and the summary statistics in
:mod:`~repro.metrics.stats`.  Collection and rendering live together in
:mod:`~repro.metrics.report` (the former ``repro.metrics.collector`` was
folded in once its last private runtime hook was deleted in the
observability PR).
"""

from .overhead import GroupOverhead, OverheadReport, compute_overhead
from .report import (
    LatencyCollector,
    NodeTrafficReport,
    format_latency_comparison,
    format_latency_percentiles,
    format_overhead_report,
    format_table,
    format_throughput_series,
    format_traffic_report,
    traffic_report,
)
from .stats import Summary, cdf_at, cdf_points, mean, percentile, percentiles, stdev

__all__ = [
    "LatencyCollector",
    "NodeTrafficReport",
    "traffic_report",
    "GroupOverhead",
    "OverheadReport",
    "compute_overhead",
    "format_latency_comparison",
    "format_latency_percentiles",
    "format_overhead_report",
    "format_table",
    "format_throughput_series",
    "format_traffic_report",
    "Summary",
    "cdf_at",
    "cdf_points",
    "mean",
    "percentile",
    "percentiles",
    "stdev",
]
