"""Measurement substrate: statistics, collectors, overhead and reports."""

from .collector import LatencyCollector, NodeTrafficReport, traffic_report
from .overhead import GroupOverhead, OverheadReport, compute_overhead
from .report import (
    format_latency_comparison,
    format_latency_percentiles,
    format_overhead_report,
    format_table,
    format_throughput_series,
    format_traffic_report,
)
from .stats import Summary, cdf_at, cdf_points, mean, percentile, percentiles, stdev

__all__ = [
    "LatencyCollector",
    "NodeTrafficReport",
    "traffic_report",
    "GroupOverhead",
    "OverheadReport",
    "compute_overhead",
    "format_latency_comparison",
    "format_latency_percentiles",
    "format_overhead_report",
    "format_table",
    "format_throughput_series",
    "format_traffic_report",
    "Summary",
    "cdf_at",
    "cdf_points",
    "mean",
    "percentile",
    "percentiles",
    "stdev",
]
