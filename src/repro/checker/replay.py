"""Sequential-replay oracle for atomic multicast traces.

:func:`check_trace` validates the paper's safety properties directly on the
per-group delivery sequences.  This module adds a complementary, application
level oracle: it *replays* the run sequentially and compares the outcome with
what the distributed run produced.

The oracle builds the union delivery relation (every group's own total order
merged into one graph), topologically sorts it into a single *witness* total
order, and replays that order through one deterministic state machine per
group.  The run is correct iff

* the union relation is acyclic (otherwise no witness order exists — this is
  the acyclic-order property, but detected at the state level), and
* for every group, folding the group's *actual* delivery sequence produces
  exactly the same state as folding the witness order filtered to the
  messages the group delivered, and
* (for completed runs) every multicast message reaches every destination —
  a lost delivery makes the per-group fold visibly diverge from the witness.

Because the fold function is order-sensitive (a hash chain by default), any
ordering, loss or duplication bug that the property checker would flag also
shows up as a concrete state divergence, which is the form application code
(like ``examples/replicated_inventory.py``) observes bugs in.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set

from ..core.message import Message
from ..overlay.base import GroupId
from .properties import (
    CheckReport,
    delivery_relation,
    find_delivery_cycle,
    format_cycle,
)

#: Order-sensitive fold: ``state = fold(state, msg_id)``.  The default hash
#: chain makes any reordering/loss/duplication change the final state.
StateFold = Callable[[int, str], int]


def _hash_chain(state: int, msg_id: str) -> int:
    return hash((state, msg_id)) & 0xFFFFFFFFFFFF


def witness_order(
    sequences: Mapping[GroupId, Sequence[str]],
    tiebreak: Optional[Mapping[str, int]] = None,
) -> Optional[List[str]]:
    """One total order consistent with every group's delivery order.

    Returns ``None`` when the union relation has a cycle (no witness exists).
    ``tiebreak`` orders messages the relation leaves unconstrained (defaults
    to lexicographic message id), keeping the witness deterministic.
    """
    successors: Dict[str, Set[str]] = defaultdict(set)
    indegree: Dict[str, int] = {}
    for sequence in sequences.values():
        for msg_id in sequence:
            indegree.setdefault(msg_id, 0)
        for earlier, later in zip(sequence, sequence[1:]):
            if later not in successors[earlier]:
                successors[earlier].add(later)
                indegree[later] = indegree.get(later, 0) + 1

    def key(msg_id: str):
        if tiebreak is not None:
            return (tiebreak.get(msg_id, len(tiebreak)), msg_id)
        return msg_id

    import heapq

    heap = [(key(m), m) for m, d in indegree.items() if d == 0]
    heapq.heapify(heap)
    order: List[str] = []
    while heap:
        _, node = heapq.heappop(heap)
        order.append(node)
        for succ in sorted(successors.get(node, ())):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                heapq.heappush(heap, (key(succ), succ))
    if len(order) != len(indegree):
        return None
    return order


def check_sequential_replay(
    sequences: Mapping[GroupId, Sequence[str]],
    messages: Mapping[str, Message],
    expect_all_delivered: bool = True,
    fold: StateFold = _hash_chain,
    tiebreak: Optional[Mapping[str, int]] = None,
) -> CheckReport:
    """Replay the run sequentially and compare states group by group."""
    report = CheckReport()
    report.checked_messages = len(messages)
    report.checked_groups = len(sequences)

    order = witness_order(sequences, tiebreak=tiebreak)
    if order is None:
        successors, nodes = delivery_relation(sequences)
        cycle = find_delivery_cycle(successors, sorted(nodes)) or []
        report.add(
            "replay",
            "no sequential replay exists: the union delivery relation is "
            f"cyclic ({format_cycle(cycle)})",
        )
        return report

    if expect_all_delivered:
        # The witness order is built from delivered ids only, so a message
        # lost at *every* destination never enters it and both folds would
        # match; flag it explicitly.
        witnessed = set(order)
        for msg_id in messages:
            if msg_id not in witnessed:
                report.add(
                    "replay",
                    f"{msg_id} never delivered anywhere: the sequential "
                    f"replay applies it but no group did",
                )

    delivered_at: Dict[GroupId, Set[str]] = {
        group: set(sequence) for group, sequence in sequences.items()
    }
    for group, sequence in sequences.items():
        actual = 0
        for msg_id in sequence:
            actual = fold(actual, msg_id)
        if expect_all_delivered:
            # The witness replays every multicast addressed to the group:
            # a lost delivery diverges here even though the relative order
            # of what *was* delivered is consistent.
            expected_ids = [
                m
                for m in order
                if m in messages and group in messages[m].dst
            ]
            extra = [
                m
                for m in order
                if m in delivered_at[group] and (m not in messages)
            ]
            expected_ids.extend(extra)  # unknown ids: integrity flags them
        else:
            expected_ids = [m for m in order if m in delivered_at[group]]
        expected = 0
        for msg_id in expected_ids:
            expected = fold(expected, msg_id)
        if actual != expected:
            missing = [
                m for m in expected_ids if m not in delivered_at[group]
            ]
            report.add(
                "replay",
                f"group {group} diverges from the sequential replay "
                f"(delivered {len(sequence)}, replay expects "
                f"{len(expected_ids)}, missing {sorted(missing)[:5]})",
            )
    return report


def conservation_check(
    sequences: Mapping[GroupId, Sequence[str]],
    messages: Mapping[str, Message],
) -> CheckReport:
    """Every multicast applied exactly once per destination (unit conservation).

    The effect-level form of validity + integrity: the total number of
    applications of each message across groups equals ``|dst|``.
    """
    report = CheckReport()
    counts: Dict[str, int] = defaultdict(int)
    for sequence in sequences.values():
        for msg_id in sequence:
            counts[msg_id] += 1
    for msg_id, message in messages.items():
        if counts.get(msg_id, 0) != len(message.dst):
            report.add(
                "conservation",
                f"{msg_id} applied {counts.get(msg_id, 0)} times, "
                f"expected {len(message.dst)}",
            )
    report.checked_messages = len(messages)
    report.checked_groups = len(sequences)
    return report
