"""Recovery oracle: a rejoined replica's deliveries across a restart.

When a crashed replica reboots from its WAL + snapshot and rejoins the
group, three things must hold of its delivery sequence (the order its own
protocol copy delivered messages, pre-crash incarnation and rebooted
incarnation concatenated by the WAL replay):

* **no loss** (``recovery-loss``) — every delivery the pre-crash incarnation
  made is still there after the restart: durable state may not forget;
* **no duplication** (``recovery-dup``) — replaying the WAL and catching up
  from peers must not deliver anything twice;
* **prefix consistency** (``recovery-prefix``) — the rebooted incarnation's
  sequence extends the pre-crash sequence *in order*; recovery may not
  reorder history.

Against a reference survivor (a replica that never crashed), convergence is
also required: same delivered set (``recovery-divergence``) in the same
order (``recovery-order``) once the run quiesces — the restarted replica is
a full group member again, not an approximate one.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .properties import CheckReport


def check_recovery(
    pre_crash: Sequence[str],
    rejoined: Sequence[str],
    reference: Optional[Sequence[str]] = None,
    replica: str = "replica",
) -> CheckReport:
    """Check one restarted replica's delivery sequence across its restart.

    ``pre_crash`` is the victim's delivery sequence captured at the instant
    it crashed; ``rejoined`` is the (replayed + new) sequence of the rebooted
    incarnation at the end of the run; ``reference`` is a never-crashed
    survivor's sequence, if one exists.
    """
    report = CheckReport()
    report.checked_messages = len(rejoined)
    report.checked_groups = 1

    seen = set()
    for msg_id in rejoined:
        if msg_id in seen:
            report.add(
                "recovery-dup",
                f"{replica} delivered {msg_id} twice across its restart",
            )
        seen.add(msg_id)

    pre = list(pre_crash)
    if list(rejoined[: len(pre)]) != pre:
        lost = [m for m in pre if m not in seen]
        if lost:
            report.add(
                "recovery-loss",
                f"{replica} lost {len(lost)} pre-crash deliveries over its "
                f"restart: {lost[:5]}",
            )
        else:
            report.add(
                "recovery-prefix",
                f"{replica} reordered its pre-crash deliveries: expected "
                f"prefix {pre[:5]}..., replayed {list(rejoined[: len(pre)])[:5]}...",
            )

    if reference is not None:
        ref = list(reference)
        if set(ref) != seen:
            missing = [m for m in ref if m not in seen]
            extra = [m for m in rejoined if m not in set(ref)]
            report.add(
                "recovery-divergence",
                f"{replica} diverged from the surviving replica after rejoin: "
                f"missing {missing[:5]} extra {extra[:5]}",
            )
        elif list(rejoined) != ref:
            report.add(
                "recovery-order",
                f"{replica} agrees on the delivered set but not the order: "
                f"{list(rejoined)[:5]}... vs {ref[:5]}...",
            )
    return report
