"""Trace checker for the atomic multicast properties (paper §2.2).

Given the per-group delivery sequences produced by a run (a
:class:`~repro.protocols.base.RecordingSink`) and the set of messages that
were multicast, the checker validates:

* **Integrity** — every message is delivered at most once per group, only at
  its destinations, and only if it was multicast;
* **Validity / Agreement** (for completed runs) — every multicast message is
  delivered by all of its destinations;
* **Prefix order** — two groups that both deliver two common messages deliver
  them in the same relative order;
* **Acyclic order** — the union of all per-group delivery orders (the ``≺``
  relation) has no cycle;
* **Minimality** (genuineness) — checked from network traffic separately, via
  :func:`check_genuineness`.

The checker is used by integration tests, by hypothesis-driven property tests
and can be enabled on any experiment via ``record_deliveries=True``.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..core.message import Message
from ..overlay.base import GroupId
from ..protocols.base import RecordingSink


@dataclass
class Violation:
    """One property violation found in a trace."""

    property_name: str
    description: str

    def __str__(self) -> str:
        return f"[{self.property_name}] {self.description}"


@dataclass
class CheckReport:
    """Outcome of checking one trace."""

    violations: List[Violation] = field(default_factory=list)
    checked_messages: int = 0
    checked_groups: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, property_name: str, description: str) -> None:
        self.violations.append(Violation(property_name, description))

    def raise_if_failed(self) -> None:
        if not self.ok:
            details = "\n".join(str(v) for v in self.violations[:20])
            raise AssertionError(
                f"{len(self.violations)} atomic multicast violations:\n{details}"
            )


def check_trace(
    sink: RecordingSink,
    multicast_messages: Iterable[Message],
    expect_all_delivered: bool = True,
) -> CheckReport:
    """Check every atomic multicast safety property on a delivery trace."""
    report = CheckReport()
    messages: Dict[str, Message] = {m.msg_id: m for m in multicast_messages}
    sequences: Dict[GroupId, List[str]] = {
        g: sink.sequence(g) for g in sink.per_group
    }
    report.checked_messages = len(messages)
    report.checked_groups = len(sequences)

    _check_integrity(report, messages, sequences)
    if expect_all_delivered:
        _check_validity_agreement(report, messages, sequences)
    _check_prefix_order(report, messages, sequences)
    _check_acyclic_order(report, sequences)
    return report


# --------------------------------------------------------------------- helpers
def _check_integrity(
    report: CheckReport,
    messages: Mapping[str, Message],
    sequences: Mapping[GroupId, Sequence[str]],
) -> None:
    for group, sequence in sequences.items():
        seen: Set[str] = set()
        for msg_id in sequence:
            if msg_id in seen:
                report.add("integrity", f"group {group} delivered {msg_id} twice")
            seen.add(msg_id)
            message = messages.get(msg_id)
            if message is None:
                report.add(
                    "integrity",
                    f"group {group} delivered {msg_id}, which was never multicast",
                )
            elif group not in message.dst:
                report.add(
                    "integrity",
                    f"group {group} delivered {msg_id} addressed to {sorted(message.dst)}",
                )


def _check_validity_agreement(
    report: CheckReport,
    messages: Mapping[str, Message],
    sequences: Mapping[GroupId, Sequence[str]],
) -> None:
    delivered_at: Dict[str, Set[GroupId]] = defaultdict(set)
    for group, sequence in sequences.items():
        for msg_id in sequence:
            delivered_at[msg_id].add(group)
    for msg_id, message in messages.items():
        missing = set(message.dst) - delivered_at.get(msg_id, set())
        if missing:
            report.add(
                "validity/agreement",
                f"{msg_id} (dst={sorted(message.dst)}) never delivered at {sorted(missing)}",
            )


def _check_prefix_order(
    report: CheckReport,
    messages: Mapping[str, Message],
    sequences: Mapping[GroupId, Sequence[str]],
) -> None:
    # Position of every message in every group's delivery order.
    position: Dict[GroupId, Dict[str, int]] = {
        g: {m: i for i, m in enumerate(seq)} for g, seq in sequences.items()
    }
    groups = list(sequences)
    for i, g in enumerate(groups):
        for h in groups[i + 1 :]:
            common = set(position[g]) & set(position[h])
            # Prefix order only constrains messages addressed to both groups.
            common = {
                m
                for m in common
                if m in messages and {g, h} <= set(messages[m].dst)
            }
            ordered = sorted(common, key=lambda m: position[g][m])
            for a_idx in range(len(ordered)):
                for b_idx in range(a_idx + 1, len(ordered)):
                    a, b = ordered[a_idx], ordered[b_idx]
                    if position[h][a] > position[h][b]:
                        report.add(
                            "prefix-order",
                            f"groups {g} and {h} disagree on {a} vs {b}",
                        )


def find_delivery_cycle(
    successors: Mapping[str, Set[str]], nodes: Iterable[str]
) -> Optional[List[str]]:
    """One concrete cycle in the delivery relation, or ``None`` if acyclic.

    Returns the cycle as a closed path ``[a, b, …, a]``.  Used by the
    acyclic-order check and the sequential-replay oracle so a violation names
    an actual witness — with hybrid mode promoting ``acyclic-order`` to a
    hard CI failure, "a cycle exists" alone is not an actionable report.
    """
    colors: Dict[str, int] = {}
    stack: List[str] = []
    on_stack: Dict[str, int] = {}

    def visit(start: str) -> Optional[List[str]]:
        # Iterative DFS with an explicit path so deep chains cannot blow the
        # recursion limit (delivery relations reach thousands of messages).
        work: List[Tuple[str, Iterator[str]]] = [(start, iter(successors.get(start, ())))]
        colors[start] = 1
        on_stack[start] = len(stack)
        stack.append(start)
        while work:
            node, edges = work[-1]
            advanced = False
            for succ in edges:
                state = colors.get(succ, 0)
                if state == 1:
                    cycle = stack[on_stack[succ]:] + [succ]
                    return cycle
                if state == 0:
                    colors[succ] = 1
                    on_stack[succ] = len(stack)
                    stack.append(succ)
                    work.append((succ, iter(successors.get(succ, ()))))
                    advanced = True
                    break
            if not advanced:
                work.pop()
                colors[node] = 2
                stack.pop()
                on_stack.pop(node, None)
        return None

    for node in nodes:
        if colors.get(node, 0) == 0:
            found = visit(node)
            if found is not None:
                return found
    return None


def delivery_relation(
    sequences: Mapping[GroupId, Sequence[str]]
) -> Tuple[Dict[str, Set[str]], Set[str]]:
    """The union ``≺`` relation: edge a -> b when some group delivers ``a``
    immediately before ``b`` (per-sequence paths make it transitive)."""
    successors: Dict[str, Set[str]] = defaultdict(set)
    nodes: Set[str] = set()
    for sequence in sequences.values():
        nodes.update(sequence)
        for earlier_idx in range(len(sequence) - 1):
            successors[sequence[earlier_idx]].add(sequence[earlier_idx + 1])
    return successors, nodes


def format_cycle(cycle: Sequence[str]) -> str:
    """Render a closed cycle path compactly (long cycles capped at 12 nodes).

    Shared by the acyclic-order check and the sequential-replay oracle so
    both reports name the witness the same way.
    """
    shown = list(cycle) if len(cycle) <= 12 else list(cycle[:11]) + ["…", cycle[-1]]
    return " < ".join(shown)


def _check_acyclic_order(
    report: CheckReport, sequences: Mapping[GroupId, Sequence[str]]
) -> None:
    successors, nodes = delivery_relation(sequences)
    cycle = find_delivery_cycle(successors, sorted(nodes))
    if cycle is not None:
        report.add(
            "acyclic-order",
            f"the delivery relation contains a cycle of {len(cycle) - 1} "
            f"messages: {format_cycle(cycle)}",
        )


# --------------------------------------------------------------------- epochs
def check_epochs(
    delivery_epochs: Mapping[GroupId, Sequence[Tuple[str, int]]],
    barriers: Optional[Mapping[str, int]] = None,
) -> CheckReport:
    """Atomic multicast safety *across* overlay reconfigurations.

    ``delivery_epochs`` maps each group to its delivery sequence annotated
    with the overlay epoch the group was in when it delivered:
    ``[(msg_id, epoch), ...]``.  ``barriers`` maps each epoch-barrier message
    id to the epoch it closed.  Checked properties:

    * **epoch-monotonic** — a group's delivery epochs never decrease (a group
      cannot travel back to a previous overlay);
    * **epoch-agreement** — every message is delivered in the *same* epoch at
      all of its destinations (the switch is atomic: no message straddles the
      boundary, which is what makes the rank-order change safe);
    * **epoch-barrier-boundary** — the barrier closing epoch ``e`` is
      delivered in epoch ``e`` at every group, and no delivery from an epoch
      *earlier* than ``e`` ever follows it.  (Same-epoch deliveries after the
      barrier are legal: groups keep draining concurrent old-epoch messages
      between delivering the barrier and switching.)

    Loss/duplication/ordering across the boundary are covered by running the
    regular :func:`check_trace` over the *whole* multi-epoch trace.
    """
    report = CheckReport()
    report.checked_groups = len(delivery_epochs)
    epoch_of: Dict[str, int] = {}
    for group, sequence in delivery_epochs.items():
        last_epoch: Optional[int] = None
        for msg_id, epoch in sequence:
            if last_epoch is not None and epoch < last_epoch:
                report.add(
                    "epoch-monotonic",
                    f"group {group} delivered {msg_id} in epoch {epoch} after "
                    f"delivering in epoch {last_epoch}",
                )
            last_epoch = epoch
            known = epoch_of.setdefault(msg_id, epoch)
            if known != epoch:
                report.add(
                    "epoch-agreement",
                    f"{msg_id} delivered in epoch {epoch} at group {group} "
                    f"but in epoch {known} elsewhere",
                )
    report.checked_messages = len(epoch_of)
    for barrier_id, closed_epoch in (barriers or {}).items():
        for group, sequence in delivery_epochs.items():
            saw_barrier = False
            for msg_id, epoch in sequence:
                if msg_id == barrier_id:
                    saw_barrier = True
                    if epoch != closed_epoch:
                        report.add(
                            "epoch-barrier-boundary",
                            f"barrier {barrier_id} closing epoch {closed_epoch} "
                            f"delivered in epoch {epoch} at group {group}",
                        )
                elif saw_barrier and epoch < closed_epoch:
                    report.add(
                        "epoch-barrier-boundary",
                        f"group {group} delivered {msg_id} (epoch {epoch}) after "
                        f"the barrier closing epoch {closed_epoch}",
                    )
    return report


# ----------------------------------------------------------------- genuineness
def check_genuineness(
    payload_received_by_group: Mapping[GroupId, int],
    delivered_by_group: Mapping[GroupId, int],
    groups: Iterable[GroupId],
) -> CheckReport:
    """Minimality check for genuine protocols.

    A genuine protocol's groups never receive payload messages they do not
    deliver, so received == delivered for every group.  (Auxiliary messages to
    previously-contacted groups — FlexCast's notifs — are permitted by the
    definition and are not payload messages.)
    """
    report = CheckReport()
    for group in groups:
        received = payload_received_by_group.get(group, 0)
        delivered = delivered_by_group.get(group, 0)
        if received > delivered:
            report.add(
                "minimality",
                f"group {group} received {received} payload messages "
                f"but delivered only {delivered}",
            )
    return report
