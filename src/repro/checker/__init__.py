"""Correctness checking of atomic multicast traces."""

from .properties import (
    CheckReport,
    Violation,
    check_epochs,
    check_genuineness,
    check_trace,
)
from .replay import check_sequential_replay, conservation_check, witness_order

__all__ = [
    "CheckReport",
    "Violation",
    "check_epochs",
    "check_genuineness",
    "check_trace",
    "check_sequential_replay",
    "conservation_check",
    "witness_order",
]
