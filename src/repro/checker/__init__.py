"""Correctness checking of atomic multicast traces."""

from .properties import CheckReport, Violation, check_genuineness, check_trace

__all__ = ["CheckReport", "Violation", "check_genuineness", "check_trace"]
