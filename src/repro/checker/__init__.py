"""Correctness checking of atomic multicast traces.

What lives here: oracle functions over recorded delivery traces.  The main
entry point is :func:`check_trace` (integrity, validity/agreement, prefix
and acyclic order — returning a :class:`CheckReport` of
:class:`Violation`\\ s with concrete cycle witnesses), complemented by
:func:`check_sequential_replay` (state-level divergence, the form
applications see ordering bugs in), :func:`conservation_check`
(exactly-once effect accounting), :func:`check_epochs` (epoch-boundary
safety during live reconfiguration) and :func:`check_genuineness`.  The
fuzz harness (:mod:`repro.fuzz.harness`) runs the whole suite on every
scenario; batched runs are split into per-message deliveries by the
delivery gate before these oracles ever see them.  Crash-restart runs add
:func:`check_recovery`, which pins a rebooted replica's delivery sequence
across the restart boundary (no loss, no duplication, prefix consistency,
convergence with the survivors).
"""

from .properties import (
    CheckReport,
    Violation,
    check_epochs,
    check_genuineness,
    check_trace,
)
from .recovery import check_recovery
from .replay import check_sequential_replay, conservation_check, witness_order

__all__ = [
    "CheckReport",
    "Violation",
    "check_epochs",
    "check_genuineness",
    "check_recovery",
    "check_trace",
    "check_sequential_replay",
    "conservation_check",
    "witness_order",
]
