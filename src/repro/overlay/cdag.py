"""Complete directed acyclic graph (C-DAG) overlay — FlexCast's topology.

Paper §4.1: groups are totally ordered by a *rank* in ``0..n-1``; there is a
directed edge from every group with rank ``i`` to every group with rank ``j``
whenever ``i < j``.  A group's *ancestors* are all lower-ranked groups and its
*descendants* all higher-ranked groups.  The lowest common ancestor (lca) of a
multicast message is simply the destination group with the lowest rank; the
client sends the message there and the lca forwards it to all remaining
destinations in a single communication step.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from .base import GroupId, Overlay, OverlayError


class CDagOverlay(Overlay):
    """Complete-DAG overlay over an ordered sequence of groups.

    Parameters
    ----------
    order:
        Groups listed from lowest rank (rank 0, the "first" group every other
        group is a descendant of) to highest rank.  The paper's O1 and O2
        overlays are two different orders over the same 12 groups
        (see :mod:`repro.overlay.builders`).
    """

    def __init__(self, order: Sequence[GroupId]) -> None:
        super().__init__(order)
        self._rank: Dict[GroupId, int] = {g: r for r, g in enumerate(self._groups)}

    # ----------------------------------------------------------------- ranks
    def rank(self, group: GroupId) -> int:
        """Rank of ``group`` (0 is the lowest / first group)."""
        try:
            return self._rank[group]
        except KeyError:
            raise OverlayError(f"group {group} not in overlay") from None

    def group_at_rank(self, rank: int) -> GroupId:
        if not 0 <= rank < self.num_groups:
            raise OverlayError(f"rank {rank} out of range")
        return self._groups[rank]

    @property
    def order(self) -> List[GroupId]:
        """Groups from lowest to highest rank."""
        return list(self._groups)

    # ----------------------------------------------------------- relationships
    def is_ancestor(self, a: GroupId, b: GroupId) -> bool:
        """True iff ``a`` is an ancestor of ``b`` (strictly lower rank)."""
        return self.rank(a) < self.rank(b)

    def is_descendant(self, a: GroupId, b: GroupId) -> bool:
        """True iff ``a`` is a descendant of ``b`` (strictly higher rank)."""
        return self.rank(a) > self.rank(b)

    def ancestors(self, group: GroupId) -> List[GroupId]:
        """All groups with lower rank than ``group`` (rank order)."""
        r = self.rank(group)
        return self._groups[:r]

    def descendants(self, group: GroupId) -> List[GroupId]:
        """All groups with higher rank than ``group`` (rank order)."""
        r = self.rank(group)
        return self._groups[r + 1 :]

    def can_send(self, src: GroupId, dst: GroupId) -> bool:
        """Edges go from lower to higher rank only."""
        return self.rank(src) < self.rank(dst)

    # ------------------------------------------------------------------- lca
    def lca(self, destinations: Iterable[GroupId]) -> GroupId:
        """Lowest common ancestor: the lowest-ranked destination group."""
        dst = self.validate_destinations(destinations)
        return min(dst, key=self.rank)

    def entry_group(self, destinations: Iterable[GroupId]) -> GroupId:
        return self.lca(destinations)

    def sorted_by_rank(self, groups: Iterable[GroupId]) -> List[GroupId]:
        """Sort an arbitrary collection of groups by rank (ascending)."""
        return sorted(groups, key=self.rank)

    def describe(self) -> str:
        return "C-DAG " + " -> ".join(str(g) for g in self._groups)
