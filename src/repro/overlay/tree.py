"""Tree overlay used by the hierarchical (ByzCast-style) baseline.

Paper §3: hierarchical protocols structure communication between groups as a
tree.  A multicast message is first sent to the lowest common ancestor of its
destinations in the tree (in the worst case the root), is ordered there, and
then travels down the tree — being ordered at every group on the way — until
it reaches all destinations.  Groups that lie on those paths but are not
destinations still receive (and order) the message, which is exactly the
communication overhead quantified in Figures 1 and 9 of the paper.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set

from .base import GroupId, Overlay, OverlayError


class TreeOverlay(Overlay):
    """Rooted tree over groups.

    Parameters
    ----------
    root:
        The root group id.
    children:
        Mapping from a group to the ordered list of its children.  Groups not
        present as keys are leaves.
    """

    def __init__(self, root: GroupId, children: Dict[GroupId, Sequence[GroupId]]) -> None:
        self._root = root
        self._children: Dict[GroupId, List[GroupId]] = {
            g: list(kids) for g, kids in children.items()
        }
        groups = self._collect_groups()
        super().__init__(groups)
        self._parent: Dict[GroupId, Optional[GroupId]] = {root: None}
        for parent, kids in self._children.items():
            for kid in kids:
                if kid in self._parent:
                    raise OverlayError(f"group {kid} has two parents")
                self._parent[kid] = parent
        if set(self._parent) != set(groups):
            raise OverlayError("children mapping is not a connected tree")
        self._depth: Dict[GroupId, int] = {}
        self._compute_depths()

    def _collect_groups(self) -> List[GroupId]:
        seen: List[GroupId] = []
        visited: Set[GroupId] = set()
        stack = [self._root]
        while stack:
            g = stack.pop()
            if g in visited:
                raise OverlayError("cycle detected in tree overlay")
            visited.add(g)
            seen.append(g)
            stack.extend(reversed(self._children.get(g, [])))
        return seen

    def _compute_depths(self) -> None:
        for g in self._groups:
            depth = 0
            cur: Optional[GroupId] = g
            while self._parent[cur] is not None:
                cur = self._parent[cur]
                depth += 1
            self._depth[g] = depth

    # ------------------------------------------------------------ structure
    @property
    def root(self) -> GroupId:
        return self._root

    def parent(self, group: GroupId) -> Optional[GroupId]:
        """Parent of ``group`` (None for the root)."""
        try:
            return self._parent[group]
        except KeyError:
            raise OverlayError(f"group {group} not in tree") from None

    def children(self, group: GroupId) -> List[GroupId]:
        return list(self._children.get(group, []))

    def depth(self, group: GroupId) -> int:
        """Distance from the root (root has depth 0)."""
        return self._depth[group]

    def is_leaf(self, group: GroupId) -> bool:
        return not self._children.get(group)

    def inner_groups(self) -> List[GroupId]:
        """Groups with at least one child (the ones exposed to overhead)."""
        return [g for g in self._groups if not self.is_leaf(g)]

    def path_to_root(self, group: GroupId) -> List[GroupId]:
        """Path from ``group`` up to and including the root."""
        path = [group]
        cur = group
        while self._parent[cur] is not None:
            cur = self._parent[cur]
            path.append(cur)
        return path

    # --------------------------------------------------------------- routing
    def can_send(self, src: GroupId, dst: GroupId) -> bool:
        """Tree edges are bidirectional parent<->child links."""
        return self._parent.get(dst) == src or self._parent.get(src) == dst

    def lca(self, destinations: Iterable[GroupId]) -> GroupId:
        """Lowest common ancestor of a destination set in the tree."""
        dst = self.validate_destinations(destinations)
        paths = [list(reversed(self.path_to_root(d))) for d in dst]  # root..d
        lca = self._root
        for level in range(min(len(p) for p in paths)):
            candidates = {p[level] for p in paths}
            if len(candidates) == 1:
                lca = candidates.pop()
            else:
                break
        return lca

    def entry_group(self, destinations: Iterable[GroupId]) -> GroupId:
        return self.lca(destinations)

    def next_hops(self, at: GroupId, destinations: Iterable[GroupId]) -> List[GroupId]:
        """Children of ``at`` whose subtree contains at least one destination.

        This defines how the hierarchical protocol propagates a message down
        the tree from the lca toward the destinations.
        """
        dst = self.validate_destinations(destinations)
        hops = []
        for child in self.children(at):
            if self._subtree_contains(child, dst):
                hops.append(child)
        return hops

    def groups_involved(self, destinations: Iterable[GroupId]) -> Set[GroupId]:
        """All groups that receive a message addressed to ``destinations``.

        Includes the destinations plus every non-destination group on the
        dissemination paths — the source of non-genuine overhead.
        """
        dst = self.validate_destinations(destinations)
        involved: Set[GroupId] = set()
        stack = [self.lca(dst)]
        while stack:
            g = stack.pop()
            involved.add(g)
            stack.extend(self.next_hops(g, dst))
        return involved

    def _subtree_contains(self, root: GroupId, targets: FrozenSet[GroupId]) -> bool:
        stack = [root]
        while stack:
            g = stack.pop()
            if g in targets:
                return True
            stack.extend(self._children.get(g, []))
        return False

    def describe(self) -> str:
        edges = ", ".join(
            f"{p}->{c}" for p in self._groups for c in self._children.get(p, [])
        )
        return f"tree rooted at {self._root}: {edges}"
