"""Construction of the paper's overlays (O1, O2, T1, T2, T3) from a latency matrix.

Paper §5.4 describes how the evaluated overlays are built:

* **O1 / O2** (FlexCast C-DAGs): pick a starting node — the *central* node for
  O1 and the *left-most* node for O2 — then repeatedly append the node closest
  to the most recently chosen one (a nearest-neighbour chain).  The resulting
  order is the C-DAG rank order.

* **T1 / T2 / T3** (hierarchical trees): trees with different numbers of inner
  nodes.  T1 and T2 mirror the geography — a European root with regional
  subtrees for America and Asia whose roots act as continental lowest common
  ancestors (these are the groups the paper reports as carrying the most
  overhead).  T3 trades latency for a concentrated root: nearly a star, so a
  single group absorbs most of the non-genuine overhead (56% in the paper).

Exact node identities in Figure 4 are not published; these builders follow the
written construction rules, which is what the reproduced trends depend on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..sim.latencies import LatencyMatrix
from .base import CompleteGraphOverlay, GroupId
from .cdag import CDagOverlay
from .tree import TreeOverlay


def nearest_neighbour_order(latencies: LatencyMatrix, seed: GroupId) -> List[GroupId]:
    """Order sites as a nearest-neighbour chain starting from ``seed``.

    At every step the not-yet-chosen site closest to the previously chosen one
    is appended (ties broken by site id for determinism).
    """
    remaining = set(range(latencies.num_sites))
    if seed not in remaining:
        raise ValueError(f"seed site {seed} out of range")
    order = [seed]
    remaining.remove(seed)
    while remaining:
        last = order[-1]
        nxt = min(remaining, key=lambda s: (latencies.latency(last, s), s))
        order.append(nxt)
        remaining.remove(nxt)
    return order


def build_o1(latencies: LatencyMatrix) -> CDagOverlay:
    """Overlay O1: nearest-neighbour C-DAG seeded at the central node.

    The central node is the site with the minimum total latency to all other
    sites (a European region in the AWS deployment), matching the paper's
    "central node" choice.
    """
    return CDagOverlay(nearest_neighbour_order(latencies, latencies.centroid_site()))


def build_o2(latencies: LatencyMatrix, seed: GroupId = 0) -> CDagOverlay:
    """Overlay O2: nearest-neighbour C-DAG seeded at the left-most node.

    The paper seeds O2 at node 1 (the left-most region on its map); with the
    default matrix that is ``us-east-1`` (site 0).
    """
    return CDagOverlay(nearest_neighbour_order(latencies, seed))


def build_cdag_from_order(order: Sequence[GroupId]) -> CDagOverlay:
    """Explicit C-DAG from a rank order (used by ablations and tests)."""
    return CDagOverlay(order)


# ------------------------------------------------- workload-aware C-DAG orders
def traffic_weighted_order(
    latencies: LatencyMatrix,
    pair_weights: Dict[frozenset, float],
    seed: GroupId,
    alpha: float = 4.0,
) -> List[GroupId]:
    """Nearest-neighbour chain under a traffic-shrunk distance.

    The effective distance between two sites is their latency divided by
    ``1 + alpha * w`` where ``w`` is the pair's observed traffic share, so
    heavily communicating pairs are pulled adjacent in the rank order (adjacent
    ranks mean one of them is the other's lca for their pairwise messages).
    With no observed traffic this degenerates to the paper's pure-latency
    nearest-neighbour construction.
    """
    max_weight = max(pair_weights.values(), default=0.0)

    def distance(a: GroupId, b: GroupId) -> float:
        lat = latencies.latency(a, b)
        if max_weight <= 0:
            return lat
        share = pair_weights.get(frozenset((a, b)), 0.0) / max_weight
        return lat / (1.0 + alpha * share)

    remaining = set(range(latencies.num_sites))
    if seed not in remaining:
        raise ValueError(f"seed site {seed} out of range")
    order = [seed]
    remaining.remove(seed)
    while remaining:
        last = order[-1]
        nxt = min(remaining, key=lambda s: (distance(last, s), s))
        order.append(nxt)
        remaining.remove(nxt)
    return order


def home_ranked_order(
    latencies: LatencyMatrix, home_weights: Dict[GroupId, float]
) -> List[GroupId]:
    """Rank order putting the busiest client homes first.

    A group's rank decides when it can be the lca of its own messages: a
    low-ranked home delivers its clients' multicasts locally before any WAN
    hop.  Groups are therefore ordered by descending observed home traffic,
    with latency to the previously placed group breaking ties (and ordering
    the zero-traffic tail sensibly).
    """
    remaining = set(range(latencies.num_sites))
    if not remaining:
        return []
    order = [max(remaining, key=lambda s: (home_weights.get(s, 0.0), -s))]
    remaining.remove(order[0])
    while remaining:
        last = order[-1]
        nxt = min(
            remaining,
            key=lambda s: (-home_weights.get(s, 0.0), latencies.latency(last, s), s),
        )
        order.append(nxt)
        remaining.remove(nxt)
    return order


# --------------------------------------------------------------------------- trees
def _clusters(latencies: LatencyMatrix) -> Dict[str, List[GroupId]]:
    """Group sites by geographic cluster.

    For the default AWS matrix this uses the region metadata; for custom
    matrices all sites fall into a single cluster and the tree builders
    degenerate to sensible latency-driven trees.
    """
    clusters: Dict[str, List[GroupId]] = {}
    for site in range(latencies.num_sites):
        clusters.setdefault(latencies.cluster(site), []).append(site)
    if list(clusters) == ["unknown"]:
        clusters = {"all": clusters["unknown"]}
    return clusters


def _cluster_root(latencies: LatencyMatrix, members: Sequence[GroupId]) -> GroupId:
    """Member with the minimum total latency to the rest of its cluster."""
    return min(
        members,
        key=lambda s: (sum(latencies.latency(s, d) for d in members), s),
    )


def _chain_children(order: Sequence[GroupId]) -> Dict[GroupId, List[GroupId]]:
    """Turn an ordered list into a path (each node parents the next)."""
    children: Dict[GroupId, List[GroupId]] = {}
    for parent, child in zip(order, order[1:]):
        children.setdefault(parent, []).append(child)
    return children


def build_t1(latencies: LatencyMatrix) -> TreeOverlay:
    """Tree T1: geographic tree with *many* inner nodes.

    Root: the central European region.  The remaining European regions hang
    off the root.  America and Asia each form a regional subtree whose root is
    the member closest to the rest of its cluster; inside each subtree the
    members form a nearest-neighbour chain, so most regional groups are inner
    nodes.  The continental subtree roots are the analogue of the paper's
    groups 5 and 9, which absorb the largest overhead in T1.
    """
    clusters = _clusters(latencies)
    if set(clusters) >= {"america", "europe", "asia"}:
        europe = clusters["europe"]
        america = clusters["america"]
        asia = clusters["asia"]
        root = latencies.centroid_site()
        if root not in europe:
            root = _cluster_root(latencies, europe)
        children: Dict[GroupId, List[GroupId]] = {root: []}
        for e in europe:
            if e != root:
                children[root].append(e)

        def attach_chain(members: List[GroupId]) -> GroupId:
            head = _cluster_root(latencies, members)
            rest = sorted(
                (m for m in members if m != head),
                key=lambda s: (latencies.latency(head, s), s),
            )
            order = [head] + rest
            for parent, child in zip(order, order[1:]):
                children.setdefault(parent, []).append(child)
            return head

        children[root].append(attach_chain(america))
        children[root].append(attach_chain(asia))
        return TreeOverlay(root, children)
    # Fallback for custom matrices: one nearest-neighbour chain.
    order = nearest_neighbour_order(latencies, latencies.centroid_site())
    return TreeOverlay(order[0], _chain_children(order))


def build_t2(latencies: LatencyMatrix) -> TreeOverlay:
    """Tree T2: geographic tree with *fewer* inner nodes than T1.

    Same continental structure as T1, but inside each continental subtree all
    members are direct children of the subtree root (two-level subtrees), so
    only the root and the two continental roots are inner nodes besides the
    European root.
    """
    clusters = _clusters(latencies)
    if set(clusters) >= {"america", "europe", "asia"}:
        europe = clusters["europe"]
        america = clusters["america"]
        asia = clusters["asia"]
        root = latencies.centroid_site()
        if root not in europe:
            root = _cluster_root(latencies, europe)
        children: Dict[GroupId, List[GroupId]] = {root: []}
        for e in europe:
            if e != root:
                children[root].append(e)
        for members in (america, asia):
            head = _cluster_root(latencies, members)
            children[root].append(head)
            children[head] = sorted(m for m in members if m != head)
        return TreeOverlay(root, children)
    order = nearest_neighbour_order(latencies, latencies.centroid_site())
    root = order[0]
    return TreeOverlay(root, {root: order[1:]})


def build_t3(latencies: LatencyMatrix) -> TreeOverlay:
    """Tree T3: a star — a single inner node (the root) absorbs all overhead.

    The root is the European region closest to the rest of Europe (the paper's
    T3 root is a European group that endures 56% overhead while every other
    group has none); for non-AWS matrices it falls back to the global centroid.
    """
    clusters = _clusters(latencies)
    if "europe" in clusters:
        root = _cluster_root(latencies, clusters["europe"])
    else:
        root = latencies.centroid_site()
    leaves = sorted(s for s in range(latencies.num_sites) if s != root)
    return TreeOverlay(root, {root: leaves})


# ----------------------------------------------------------------- conveniences
def build_complete(latencies: LatencyMatrix) -> CompleteGraphOverlay:
    """Fully connected overlay for the distributed (Skeen) baseline."""
    return CompleteGraphOverlay(list(range(latencies.num_sites)))


def standard_overlays(latencies: Optional[LatencyMatrix] = None) -> Dict[str, object]:
    """All overlays evaluated in the paper, keyed by their paper names."""
    from ..sim.latencies import aws_latency_matrix

    if latencies is None:
        latencies = aws_latency_matrix()
    return {
        "O1": build_o1(latencies),
        "O2": build_o2(latencies),
        "T1": build_t1(latencies),
        "T2": build_t2(latencies),
        "T3": build_t3(latencies),
        "complete": build_complete(latencies),
    }
