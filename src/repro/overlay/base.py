"""Overlay abstractions.

An *overlay* restricts which groups may exchange messages (paper §1, §3).
FlexCast assumes a complete DAG (C-DAG) overlay; the hierarchical baseline
assumes a tree; Skeen's distributed protocol assumes the complete graph.
All three are expressed through the :class:`Overlay` interface so the
experiment harness can treat them uniformly.

Groups are identified by integer ids (the paper's groups 1..12 map to ids
0..11, which are also site indices into the latency matrix unless a custom
placement is supplied).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import FrozenSet, Iterable, List, Sequence

GroupId = int


class OverlayError(ValueError):
    """Raised for malformed overlays or illegal queries."""


class Overlay(ABC):
    """Base class for group communication overlays."""

    def __init__(self, groups: Sequence[GroupId]) -> None:
        groups = list(groups)
        if len(groups) != len(set(groups)):
            raise OverlayError("duplicate group ids in overlay")
        if not groups:
            raise OverlayError("overlay must contain at least one group")
        self._groups: List[GroupId] = groups

    # ------------------------------------------------------------ properties
    @property
    def groups(self) -> List[GroupId]:
        """All group ids in the overlay."""
        return list(self._groups)

    @property
    def num_groups(self) -> int:
        return len(self._groups)

    def __contains__(self, group: GroupId) -> bool:
        return group in set(self._groups)

    # ------------------------------------------------------------- interface
    @abstractmethod
    def can_send(self, src: GroupId, dst: GroupId) -> bool:
        """True iff the overlay has a directed edge ``src -> dst``."""

    @abstractmethod
    def entry_group(self, destinations: Iterable[GroupId]) -> GroupId:
        """The group at which a message addressed to ``destinations`` enters
        the overlay (FlexCast/hierarchical: the lca; distributed: unused)."""

    def validate_destinations(self, destinations: Iterable[GroupId]) -> FrozenSet[GroupId]:
        """Normalize and validate a destination set."""
        dst = frozenset(destinations)
        if not dst:
            raise OverlayError("destination set must not be empty")
        unknown = dst - set(self._groups)
        if unknown:
            raise OverlayError(f"unknown destination groups: {sorted(unknown)}")
        return dst

    def describe(self) -> str:
        """Human-readable one-line description (used in reports)."""
        return f"{type(self).__name__}({self.num_groups} groups)"


class CompleteGraphOverlay(Overlay):
    """Fully connected overlay used by distributed protocols (Skeen).

    Every group can send to every other group; there is no notion of rank and
    the entry point of a message is the set of destinations themselves (the
    client sends directly to each destination).  ``entry_group`` returns the
    smallest destination id purely as a stable representative — Skeen's client
    actually broadcasts to all destinations.
    """

    def can_send(self, src: GroupId, dst: GroupId) -> bool:
        return src in self and dst in self and src != dst

    def entry_group(self, destinations: Iterable[GroupId]) -> GroupId:
        dst = self.validate_destinations(destinations)
        return min(dst)

    def describe(self) -> str:
        return f"complete graph ({self.num_groups} groups)"
