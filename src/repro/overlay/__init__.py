"""Group communication overlays: C-DAG (FlexCast), tree (hierarchical), complete graph."""

from .base import CompleteGraphOverlay, GroupId, Overlay, OverlayError
from .builders import (
    build_cdag_from_order,
    build_complete,
    build_o1,
    build_o2,
    build_t1,
    build_t2,
    build_t3,
    nearest_neighbour_order,
    standard_overlays,
)
from .cdag import CDagOverlay
from .tree import TreeOverlay

__all__ = [
    "CompleteGraphOverlay",
    "GroupId",
    "Overlay",
    "OverlayError",
    "CDagOverlay",
    "TreeOverlay",
    "build_cdag_from_order",
    "build_complete",
    "build_o1",
    "build_o2",
    "build_t1",
    "build_t2",
    "build_t3",
    "nearest_neighbour_order",
    "standard_overlays",
]
