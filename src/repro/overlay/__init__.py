"""Group communication overlays: C-DAG (FlexCast), tree, complete graph.

What lives here: the topologies protocols are deployed on.  The main entry
point is :class:`CDagOverlay` (the complete DAG FlexCast ranks groups on),
alongside :class:`TreeOverlay` (hierarchical baseline),
:class:`CompleteGraphOverlay` (Skeen baseline) and the builders from the
paper's evaluation — :func:`build_o1` / :func:`build_o2` (latency-driven
C-DAG orders), :func:`build_t1`–:func:`build_t3` (trees), plus the
workload-aware orders the reconfiguration planner draws from
(:func:`~repro.overlay.builders.nearest_neighbour_order` and friends).
"""

from .base import CompleteGraphOverlay, GroupId, Overlay, OverlayError
from .builders import (
    build_cdag_from_order,
    build_complete,
    build_o1,
    build_o2,
    build_t1,
    build_t2,
    build_t3,
    nearest_neighbour_order,
    standard_overlays,
)
from .cdag import CDagOverlay
from .tree import TreeOverlay

__all__ = [
    "CompleteGraphOverlay",
    "GroupId",
    "Overlay",
    "OverlayError",
    "CDagOverlay",
    "TreeOverlay",
    "build_cdag_from_order",
    "build_complete",
    "build_o1",
    "build_o2",
    "build_t1",
    "build_t2",
    "build_t3",
    "nearest_neighbour_order",
    "standard_overlays",
]
