"""FlexCast reproduction: genuine overlay-based atomic multicast (MIDDLEWARE 2023).

The public API is intentionally small; most users need only:

* :class:`repro.core.FlexCastProtocol` (and the baselines in :mod:`repro.protocols`),
* an overlay from :mod:`repro.overlay` (``build_o1`` et al.),
* :class:`repro.core.BatchingClient` to amortize envelope overhead under
  heavy traffic (size/time-window submission batching),
* :func:`repro.experiments.run_experiment` with an
  :class:`repro.experiments.ExperimentConfig` to reproduce the paper's
  experiments, or
* :mod:`repro.runtime` to run the same protocols over real TCP sockets.

See README.md for a quickstart and DESIGN.md for the full system inventory.
"""

from .core.batching import BatchingClient
from .core.flexcast import FlexCastGroup, FlexCastProtocol
from .core.message import Message
from .experiments.config import ExperimentConfig
from .experiments.runner import run_experiment
from .overlay.builders import (
    build_complete,
    build_o1,
    build_o2,
    build_t1,
    build_t2,
    build_t3,
    standard_overlays,
)
from .overlay.cdag import CDagOverlay
from .overlay.tree import TreeOverlay
from .protocols.hierarchical import HierarchicalProtocol
from .protocols.skeen import SkeenProtocol
from .sim.latencies import aws_latency_matrix

__version__ = "1.0.0"

__all__ = [
    "BatchingClient",
    "FlexCastGroup",
    "FlexCastProtocol",
    "Message",
    "ExperimentConfig",
    "run_experiment",
    "build_complete",
    "build_o1",
    "build_o2",
    "build_t1",
    "build_t2",
    "build_t3",
    "standard_overlays",
    "CDagOverlay",
    "TreeOverlay",
    "HierarchicalProtocol",
    "SkeenProtocol",
    "aws_latency_matrix",
    "__version__",
]
