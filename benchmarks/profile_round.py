#!/usr/bin/env python
"""cProfile harness for the delivery hot path.

Answers "where do the cycles actually go?" for any of the micro-benchmark
operations in :mod:`run_bench` — by default the steady-state lca delivery
round — without hand-inserting timers: the chosen benchmark's ``op()`` is
run under :mod:`cProfile` for a fixed number of iterations and the top-N
functions by cumulative time are printed (or dumped as JSON for tooling).

Usage::

    PYTHONPATH=src python benchmarks/profile_round.py
    PYTHONPATH=src python benchmarks/profile_round.py --bench merge_delta --size 5000
    PYTHONPATH=src python benchmarks/profile_round.py --json --top 30

The profile includes only the measured operation — benchmark setup (history
construction, warm-up) happens before profiling starts, exactly like
``run_bench`` calibrates before timing.
"""

from __future__ import annotations

import argparse
import cProfile
import json
import pstats
import sys
from pathlib import Path
from typing import Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from run_bench import BENCHMARKS  # noqa: E402

DEFAULT_BENCH = "delivery_round"
DEFAULT_SIZE = 1000
DEFAULT_ITERS = 2000
DEFAULT_TOP = 20


def profile_bench(name: str, size: int, iters: int) -> pstats.Stats:
    """Run ``iters`` operations of benchmark ``name`` under cProfile."""
    op = BENCHMARKS[name](size)
    op()  # warm-up outside the profile (caches, lazy imports)
    profiler = cProfile.Profile()
    profiler.enable()
    for _ in range(iters):
        op()
    profiler.disable()
    return pstats.Stats(profiler)


def stats_rows(stats: pstats.Stats, top: int) -> List[Dict[str, object]]:
    """The top-``top`` functions by cumulative time, as plain dicts."""
    stats.sort_stats("cumulative")
    rows: List[Dict[str, object]] = []
    for func in stats.fcn_list[:top]:  # type: ignore[attr-defined]
        cc, nc, tt, ct, _callers = stats.stats[func]  # type: ignore[attr-defined]
        filename, lineno, funcname = func
        rows.append(
            {
                "function": funcname,
                "file": filename,
                "line": lineno,
                "ncalls": nc,
                "primitive_calls": cc,
                "tottime_s": round(tt, 6),
                "cumtime_s": round(ct, 6),
            }
        )
    return rows


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--bench",
        default=DEFAULT_BENCH,
        choices=sorted(BENCHMARKS),
        help="which run_bench operation to profile (default: %(default)s)",
    )
    parser.add_argument(
        "--size", type=int, default=DEFAULT_SIZE,
        help="history size |H| (default: %(default)s)",
    )
    parser.add_argument(
        "--iters", type=int, default=DEFAULT_ITERS,
        help="operations to run under the profiler (default: %(default)s)",
    )
    parser.add_argument(
        "--top", type=int, default=DEFAULT_TOP,
        help="how many functions to report (default: %(default)s)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the top-N table as JSON instead of text",
    )
    args = parser.parse_args(argv)

    stats = profile_bench(args.bench, args.size, args.iters)
    rows = stats_rows(stats, args.top)
    if args.json:
        json.dump(
            {
                "bench": args.bench,
                "size": args.size,
                "iters": args.iters,
                "top": rows,
            },
            sys.stdout,
            indent=2,
        )
        sys.stdout.write("\n")
        return 0

    print(f"{args.bench} |H|={args.size} x {args.iters} iterations")
    print(f"{'cumtime':>9}  {'tottime':>9}  {'ncalls':>9}  function")
    for row in rows:
        where = f"{Path(str(row['file'])).name}:{row['line']}"
        print(
            f"{row['cumtime_s']:>9.4f}  {row['tottime_s']:>9.4f}  "
            f"{row['ncalls']:>9}  {row['function']} ({where})"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
