"""Figure 7 / Table 3 — per-destination latency when varying the locality rate.

Paper reference: FlexCast outperforms both baselines at the first destination
for every locality rate; at the second destination it still beats the
distributed protocol; at the third destination the hierarchical protocol wins.
FlexCast is the protocol most sensitive to locality.
"""

import pytest

from repro.experiments.figures import figure7_table3
from repro.metrics.stats import percentile


@pytest.mark.benchmark(group="figure7")
def test_figure7_table3_locality(benchmark, quick_scale):
    result = benchmark.pedantic(
        figure7_table3, args=(quick_scale,), rounds=1, iterations=1
    )
    print("\n" + result.text)
    tables = result.data["percentiles"]

    localities = (90, 95, 99)
    labels = {
        loc: {
            "flexcast": f"FlexCast O1 @{loc}%",
            "hierarchical": f"Hierarchical T1 @{loc}%",
            "distributed": f"Distributed @{loc}%",
        }
        for loc in localities
    }
    assert set(tables) == {label for per_loc in labels.values() for label in per_loc.values()}

    for loc in localities:
        flexcast = tables[labels[loc]["flexcast"]]
        hierarchical = tables[labels[loc]["hierarchical"]]
        distributed = tables[labels[loc]["distributed"]]
        # 1st destination: FlexCast clearly beats the distributed protocol
        # (paper: 42-46% latency reduction vs state-of-the-art genuine
        # multicast) and is at least on par with the hierarchical protocol at
        # the 90th percentile; in the tail (95p/99p) FlexCast wins outright.
        # Our nearest-neighbour tree makes the hierarchical baseline slightly
        # stronger at the median than the paper's trees — see EXPERIMENTS.md.
        assert flexcast[1][90] < distributed[1][90], f"locality {loc}%"
        assert flexcast[1][90] <= hierarchical[1][90] * 1.10, f"locality {loc}%"
        assert flexcast[1][99] < hierarchical[1][99], f"locality {loc}%"
        # 2nd destination: FlexCast still beats the distributed protocol.
        assert flexcast[2][90] < distributed[2][90], f"locality {loc}%"

    # FlexCast benefits from higher locality at the first destination
    # (reduction from 90% -> 99% locality, as in Table 3).
    assert (
        tables[labels[99]["flexcast"]][1][90]
        <= tables[labels[90]["flexcast"]][1][90] * 1.10
    )
