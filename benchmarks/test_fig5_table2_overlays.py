"""Figure 5 / Table 2 — per-destination latency when varying the overlay.

Paper reference (90% locality, 90th percentile): FlexCast is very sensitive to
the chosen C-DAG (O1 vs O2); the hierarchical trees are much less sensitive to
the chosen tree, and T3 (the star) is the slowest tree because every message
crosses its root.
"""

import pytest

from repro.experiments.figures import figure5_table2


@pytest.mark.benchmark(group="figure5")
def test_figure5_table2_overlays(benchmark, bench_scale):
    result = benchmark.pedantic(
        figure5_table2, args=(bench_scale,), rounds=1, iterations=1
    )
    print("\n" + result.text)
    tables = result.data["percentiles"]

    assert set(tables) == {
        "FlexCast O1",
        "FlexCast O2",
        "Hierarchical T1",
        "Hierarchical T2",
        "Hierarchical T3",
    }
    # Every configuration produced 1st and 2nd destination data.
    for label, table in tables.items():
        assert 1 in table and 2 in table, label
        assert table[1][90] > 0

    # FlexCast is highly sensitive to the overlay: the O1 and O2 latency
    # profiles differ noticeably at some destination rank (in the paper the
    # difference is largest at the later destinations; O1 is kept afterwards).
    o1, o2 = tables["FlexCast O1"], tables["FlexCast O2"]
    common_ranks = set(o1) & set(o2)
    assert any(
        abs(o1[rank][90] - o2[rank][90]) / o2[rank][90] > 0.05 for rank in common_ranks
    )

    # The star tree T3 funnels everything through its root: its first
    # destination latency is never meaningfully better than the other trees.
    t1, t2, t3 = (tables[f"Hierarchical {t}"][1][90] for t in ("T1", "T2", "T3"))
    assert t3 >= min(t1, t2) * 0.9

    # CDF series exist for plotting each destination (Figure 5 proper).
    cdfs = result.data["cdfs"]
    assert all(cdfs[label][1] for label in tables)
