"""Figure 8 — information exchanged per node (99% locality, full mix).

Paper reference: FlexCast's average message size grows as nodes get higher in
the C-DAG (they receive more history data), whereas the baselines have roughly
constant message sizes; on aggregate FlexCast exchanges somewhat more bytes
per node (79 KB/s vs 66-68.5 KB/s on the paper's testbed).
"""

import pytest

from repro.experiments.figures import figure8


@pytest.mark.benchmark(group="figure8")
def test_figure8_per_node_traffic(benchmark, quick_scale):
    result = benchmark.pedantic(figure8, args=(quick_scale,), rounds=1, iterations=1)
    print("\n" + result.text)
    per_node = result.data["per_node"]
    averages = result.data["average_kbytes_per_second"]

    assert set(per_node) == {"FlexCast O1", "Hierarchical T1", "Distributed"}
    for label, rows in per_node.items():
        assert len(rows) == 12, label
        assert all(r["messages_per_second"] > 0 for r in rows), label

    # FlexCast's average message size grows up the C-DAG: the last third of
    # the rank order receives larger messages (more history) than the first
    # third right above the lca positions.
    flexcast_rows = per_node["FlexCast O1"]
    lower_third = [r["average_message_bytes"] for r in flexcast_rows[1:5]]
    upper_third = [r["average_message_bytes"] for r in flexcast_rows[-4:]]
    assert sum(upper_third) / len(upper_third) > sum(lower_third) / len(lower_third)

    # The spread of average message sizes is wider for FlexCast than for the
    # baselines (their payload-only messages have near-constant size).
    def spread(rows):
        sizes = [r["average_message_bytes"] for r in rows if r["average_message_bytes"] > 0]
        return max(sizes) - min(sizes)

    assert spread(per_node["FlexCast O1"]) > spread(per_node["Distributed"])

    # FlexCast ships at least as many bytes per node as the genuine baseline
    # (history data is the price of overlay-based genuineness).
    assert averages["FlexCast O1"] >= averages["Distributed"] * 0.8
    assert all(v > 0 for v in averages.values())
