"""Benchmarks for the reconfiguration subsystem.

Two costs matter for epoch-based overlay switching:

* **planning cost** (CPU) — re-running the workload-aware C-DAG construction
  and evaluating candidates against the observed window must be cheap enough
  to run periodically on the coordinator (pytest-benchmark measurement);
* **switch-over cost** (virtual time) — the live switch stalls client intake
  for prepare + barrier + quiesce + switch.  The scenario benchmark runs the
  canonical workload-shift experiment, records the cost, and asserts it stays
  within a few WAN round trips — and that the switch actually pays for itself
  within the run.
"""

import pytest

from repro.experiments.scenarios import workload_shift_scenario
from repro.reconfig.experiment import run_workload_shift
from repro.reconfig.monitor import WorkloadMonitor
from repro.reconfig.planner import Planner
from repro.sim.latencies import aws_latency_matrix


def shifted_aws_snapshot(samples=500):
    """An Asia-heavy window observed on the 12-region AWS geometry."""
    monitor = WorkloadMonitor(window_ms=1e9)
    asia = (8, 9, 10, 11)
    for i in range(samples):
        home = asia[i % 4]
        partner = asia[(i + 1) % 4] if i % 5 else (i % 8)
        monitor.observe(home, {home, partner}, at=float(i))
    return monitor.snapshot()


@pytest.mark.benchmark(group="reconfig")
def test_planner_replan_cost(benchmark):
    """One full re-planning pass on the 12-region matrix with a busy window."""
    planner = Planner(aws_latency_matrix(), min_samples=10)
    snapshot = shifted_aws_snapshot()
    current = list(range(12))

    result = benchmark(lambda: planner.plan(current, snapshot))
    assert result is not None  # the shifted window justifies a switch


@pytest.mark.benchmark(group="reconfig")
def test_monitor_observe_cost(benchmark):
    """Sliding-window upkeep on the delivery path must stay O(1)-ish."""
    monitor = WorkloadMonitor(window_ms=1_000.0)
    counter = {"t": 0.0}

    def observe():
        counter["t"] += 1.0
        monitor.observe(0, {0, 5}, at=counter["t"])

    benchmark(observe)


class TestSwitchoverScenario:
    @pytest.fixture(scope="class")
    def result(self):
        return run_workload_shift(workload_shift_scenario(), with_reconfig=True)

    def test_switchover_cost_recorded_and_bounded(self, result):
        scenario = result.scenario
        assert result.switched
        switch = result.switches[0]
        print(
            f"\nswitch-over cost: {switch.duration_ms:.0f} ms "
            f"(prepare {switch.prepared_ms - switch.started_ms:.0f} ms, "
            f"drain {switch.drained_ms - switch.prepared_ms:.0f} ms, "
            f"commit {switch.completed_ms - switch.drained_ms:.0f} ms, "
            f"{switch.quiesce_rounds} quiesce rounds)"
        )
        # Prepare + barrier + two stable quiesce rounds + switch: each costs
        # about one coordinator<->group round trip on the 100 ms WAN.
        assert switch.duration_ms < 20 * scenario.inter_ms

    def test_switch_pays_for_itself_within_the_run(self, result):
        scenario = result.scenario
        stale = run_workload_shift(scenario, with_reconfig=False)
        window = (scenario.post_eval_ms, scenario.duration_ms)
        assert result.mean_delivery_latency(*window) < stale.mean_delivery_latency(
            *window
        )
        result.raise_if_unsafe()
