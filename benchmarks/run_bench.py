#!/usr/bin/env python
"""Standalone micro-benchmark harness for the FlexCast core hot path.

Times the operations that dominate per-delivery cost — ``depends``,
``diff_for``, ``merge_delta``, the full lca delivery round (plain, hybrid
and batched) and a coordinator re-planning pass — at several history sizes,
plus a throughput-vs-batch-size sweep, and writes the numbers to
``BENCH_micro.json`` so the perf trajectory is tracked across PRs (see
DESIGN.md for the complexity tables and amortization claims these numbers
validate).

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py
    PYTHONPATH=src python benchmarks/run_bench.py --sizes 200,1000 --with-tests

``--with-tests`` first runs the tier-1 pytest suite and records its outcome in
the report; CI wires both together (.github/workflows/ci.yml).
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.flexcast import FlexCastGroup  # noqa: E402
from repro.core.history import History, HistoryDiffTracker  # noqa: E402
from repro.core.message import FlexCastBatch, FlexCastTsPropose, Message  # noqa: E402
from repro.obs import Observability  # noqa: E402
from repro.overlay.cdag import CDagOverlay  # noqa: E402
from repro.protocols.base import RecordingSink  # noqa: E402
from repro.reconfig.monitor import WorkloadMonitor  # noqa: E402
from repro.reconfig.planner import Planner  # noqa: E402
from repro.sim.latencies import aws_latency_matrix  # noqa: E402
from repro.sim.transport import RecordingTransport  # noqa: E402
from repro.storage import FileStorage, InMemoryStorage  # noqa: E402

DEFAULT_SIZES = (200, 1000, 5000)
#: Aim for roughly this much wall time per measurement.
TARGET_SECONDS = 0.25
MIN_ITERS = 5


def build_chain_history(length: int) -> History:
    """The chain shape: each delivery depends on the previous one."""
    history = History()
    for i in range(length):
        history.record_delivery(Message(msg_id=f"m{i}", dst=frozenset({i % 4})))
    return history


def _measure(op: Callable[[], None], repeat: int) -> Dict[str, float]:
    """Run ``op`` until ~TARGET_SECONDS, ``repeat`` times; keep the best run."""
    # Calibrate the iteration count on a short warm-up.
    op()
    start = time.perf_counter()
    op()
    single = max(time.perf_counter() - start, 1e-9)
    iters = max(MIN_ITERS, int(TARGET_SECONDS / single))
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        for _ in range(iters):
            op()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed / iters)
    return {"ops_per_sec": 1.0 / best, "seconds_per_op": best, "iters": iters}


#: Paired-measurement shape: many short alternating slices, best-of each side.
PAIRED_ROUNDS = 40
PAIRED_SLICE_SECONDS = 0.03


def _measure_paired(
    base_op: Callable[[], None],
    variant_op: Callable[[], None],
    rounds: int = PAIRED_ROUNDS,
) -> Dict[str, float]:
    """Best-of paired measurement: the overhead of ``variant_op`` over
    ``base_op``.

    Sequential measurement (all of A, then all of B, possibly minutes
    apart) lets machine-speed drift masquerade as overhead — far more than
    the few percent a tight gate wants to resolve.  Interleaving many short
    slices (A, B, A, B, ...) samples both operations across the same wall
    window, and taking the best slice for each side means both per-op times
    come from the machine's quiet moments, so drift largely cancels.
    """
    bests = []
    iterss = []
    for op in (base_op, variant_op):
        op()
        start = time.perf_counter()
        op()
        single = max(time.perf_counter() - start, 1e-9)
        iterss.append(max(MIN_ITERS, int(PAIRED_SLICE_SECONDS / single)))
        bests.append(float("inf"))
    for _ in range(rounds):
        for slot, op in enumerate((base_op, variant_op)):
            start = time.perf_counter()
            for _ in range(iterss[slot]):
                op()
            elapsed = time.perf_counter() - start
            bests[slot] = min(bests[slot], elapsed / iterss[slot])
    return {
        "base_ops_per_sec": 1.0 / bests[0],
        "variant_ops_per_sec": 1.0 / bests[1],
        "overhead": bests[1] / bests[0],
    }


# ------------------------------------------------------------- benchmark defs
def bench_depends(size: int) -> Callable[[], None]:
    history = build_chain_history(size)
    first, last = "m0", f"m{size - 1}"

    def op() -> None:
        assert history.depends(last, first)

    return op


def bench_diff_for(size: int) -> Callable[[], None]:
    """Steady state: the descendant is up to date, the diff is empty.

    This is the per-send cost on the delivery hot path once a descendant has
    been bootstrapped — the acceptance metric for the incremental indexes.
    """
    history = build_chain_history(size)
    tracker = HistoryDiffTracker()
    tracker.diff_for("peer", history)

    def op() -> None:
        assert tracker.diff_for("peer", history).is_empty

    return op


def bench_diff_for_cold(size: int) -> Callable[[], None]:
    """First contact: a brand-new descendant asks for the entire history.

    Past :data:`~repro.core.history.COLD_SYNC_MIN_ENTRIES` this takes the
    packed-snapshot path: the snapshot is built once, cached on the history
    and shared by reference across cold callers, so each further cold diff is
    O(suffix) — flat in |H| (the ``--flat`` gate enforces it).  The old path
    re-materialised every vertex/edge tuple per reconnect.
    """
    history = build_chain_history(size)
    history.live_snapshot()  # build + cache once, outside the timed op

    def op() -> None:
        assert HistoryDiffTracker().diff_for("peer", history).snapshot is not None

    return op


#: Entries in the fixed-size delta ``bench_merge_delta`` merges per op.
MERGE_DELTA_ENTRIES = 100


def bench_merge_delta(size: int) -> Callable[[], None]:
    """Merge a fixed-size (~100-message) delta into an |H|-sized history.

    The shape the protocol actually executes in steady state: a bounded
    batch of new entries landing in a large existing history (the old
    definition — a full |H|-sized delta into an empty history — was
    inherently O(|H|)/op and now lives in ``cold_sync``).  Per-op cost must
    be O(delta), flat in |H|; the ``--flat`` gate enforces it.  The base
    history is rebuilt once per cycle of ``size / 100`` merges, so the
    amortized rebuild cost is also O(delta) and identical across sizes.
    """
    rounds = max(1, size // MERGE_DELTA_ENTRIES)
    deltas = []
    for r in range(rounds):
        source = History()
        for j in range(MERGE_DELTA_ENTRIES):
            source.record_delivery(
                Message(msg_id=f"d{r}-{j}", dst=frozenset({j % 4}))
            )
        deltas.append(source.full_delta())
    state = {"history": build_chain_history(size), "r": 0}

    def op() -> None:
        r = state["r"]
        if r == 0 and len(state["history"]) > size:
            state["history"] = build_chain_history(size)
        state["history"].merge_delta(deltas[r])
        state["r"] = (r + 1) % rounds

    return op


def bench_cold_sync(size: int) -> Callable[[], None]:
    """One full cold sync: packed snapshot bulk-installed into a new history.

    O(|H|)/op by design — this measures the per-entry constant of the
    wholesale index swap (:meth:`History.install_snapshot`'s fresh fast
    path), not flatness, so it is *not* in the ``--flat`` gate; divide
    op/s by |H| to compare per-entry rates across sizes.
    """
    delta = build_chain_history(size).cold_delta()

    def op() -> None:
        target = History()
        target.merge_delta(delta)
        assert len(target) == size

    return op


def bench_delivery_round(size: int) -> Callable[[], None]:
    """One steady-state lca delivery round with |H| = ``size``.

    The group already holds a history of ``size`` messages and its
    destinations are up to date; each operation is one new client request:
    deliver locally, diff the history for both other destinations, forward.
    """
    overlay = CDagOverlay(list(range(12)))
    group = FlexCastGroup(0, overlay, RecordingTransport(0), RecordingSink())
    for i in range(size):
        group.history.record_delivery(
            Message(msg_id=f"fill-{i}", dst=frozenset({0, 3, 7}))
        )
    for dest in (3, 7):
        group.diff_tracker.diff_for(dest, group.history)
    counter = {"i": 0}

    def op() -> None:
        counter["i"] += 1
        group.on_client_request(
            Message(msg_id=f"bench-{counter['i']}", dst=frozenset({0, 3, 7}))
        )

    return op


def bench_delivery_round_hybrid(size: int) -> Callable[[], None]:
    """One steady-state lca delivery round with the hybrid Skeen-timestamp
    ordering authority on (|H| = ``size``).

    Same shape as ``delivery_round`` plus the hybrid overhead: the client
    request mints a local Skeen proposal (broadcast to the two peers), both
    peers' proposals arrive, the final timestamp decides and the convoy gate
    releases the delivery.  The gap to ``delivery_round`` is the paper's
    convoy-effect cost on the gated hot path, which the CI gate bounds.
    """
    overlay = CDagOverlay(list(range(12)))
    group = FlexCastGroup(
        0, overlay, RecordingTransport(0), RecordingSink(), hybrid=True
    )
    for i in range(size):
        group.history.record_delivery(
            Message(msg_id=f"fill-{i}", dst=frozenset({0, 3, 7}))
        )
    for dest in (3, 7):
        group.diff_tracker.diff_for(dest, group.history)
    counter = {"i": 0}

    def op() -> None:
        counter["i"] += 1
        mid = f"bench-{counter['i']}"
        message = Message(msg_id=mid, dst=frozenset({0, 3, 7}))
        group.on_client_request(message)
        assert group.ts is not None
        local_ts = group.ts.pending[mid].local_timestamp
        for peer in (3, 7):
            group.on_envelope(
                peer,
                FlexCastTsPropose(
                    message=message, timestamp=local_ts, from_group=peer
                ),
            )
        assert mid in group.delivered_in_g

    return op


#: Window the batched delivery benchmark coalesces under (and the size the
#: CI gate's >=2x-throughput claim is made at; see DESIGN.md "batching the
#: delivery path").
BATCH_WINDOW = 16


def bench_delivery_round_batched(
    size: int, batch: int = BATCH_WINDOW
) -> Callable[[], None]:
    """One steady-state lca delivery round fed by batches of ``batch``.

    Same shape as ``delivery_round``, but each operation submits one
    :class:`FlexCastBatch` of ``batch`` client messages: the group orders
    the carrier once — one history vertex, one diff per destination, one
    envelope per destination — and fans it out into ``batch`` application
    deliveries.  Numbers are normalized to **messages**/sec (see
    ``BENCH_SCALE``), so this benchmark is directly comparable to
    ``delivery_round``: the ratio is the amortization batching buys on the
    delivery hot path.
    """
    overlay = CDagOverlay(list(range(12)))
    group = FlexCastGroup(0, overlay, RecordingTransport(0), RecordingSink())
    dst = frozenset({0, 3, 7})
    for i in range(size):
        group.history.record_delivery(Message(msg_id=f"fill-{i}", dst=dst))
    for dest in (3, 7):
        group.diff_tracker.diff_for(dest, group.history)
    counter = {"i": 0}

    def op() -> None:
        counter["i"] += 1
        base = counter["i"] * batch
        members = tuple(
            Message(msg_id=f"bench-{base + j}", dst=dst) for j in range(batch)
        )
        carrier = Message.batch_of(members, batch_id=f"bench-batch-{counter['i']}")
        group.on_envelope("client", FlexCastBatch(message=carrier))
        assert carrier.msg_id in group.delivered_in_g

    return op


def bench_wal_append(size: int) -> Callable[[], None]:
    """One durable WAL append (FileStorage, default fsync batching).

    The per-mutation cost the durability layer adds to every history/SMR
    state change: CRC-framed JSON encode + buffered write + flush, with an
    fsync every ``fsync_every`` records.  ``size`` shapes the record (a
    realistic ``["d", msg_id]`` delivery entry); the file is reset whenever
    it reaches ``size`` records so steady state, not file growth, is timed.
    """
    tmp = tempfile.TemporaryDirectory(prefix="bench-wal-")
    wal = FileStorage(tmp.name).wal("bench")
    counter = {"i": 0, "_dir": tmp}  # keep the tempdir alive via the closure

    def op() -> None:
        counter["i"] += 1
        wal.append(["d", f"bench-{counter['i']}"])
        if len(wal) >= size:
            wal.reset([])

    return op


def bench_recovery_replay(size: int) -> Callable[[], None]:
    """Rebuild a group history from storage (snapshot + ``size``-record WAL).

    The boot-time cost of crash recovery: :meth:`History.recover` restoring
    the chain-shaped history entirely from its journal.  InMemoryStorage
    keeps the measurement on the replay logic itself rather than disk reads.
    """
    storage = InMemoryStorage()
    source = History()
    source.attach_storage(storage, "bench", snapshot_min_wal_records=10**9)
    for i in range(size):
        source.record_delivery(Message(msg_id=f"m{i}", dst=frozenset({i % 4})))

    def op() -> None:
        recovered = History.recover(storage, "bench")
        assert len(recovered) == size

    return op


def bench_delivery_round_durable(size: int) -> Callable[[], None]:
    """``delivery_round`` with the history journaled to InMemoryStorage.

    Same steady-state lca round as ``delivery_round``, but every history
    mutation also lands in the attached WAL — the configuration the fuzz
    harness's crash profiles run.  The gap to ``delivery_round`` is the
    durability overhead on the hot path, which the CI gate bounds at
    ``--max-durable-overhead`` (2x).
    """
    overlay = CDagOverlay(list(range(12)))
    group = FlexCastGroup(0, overlay, RecordingTransport(0), RecordingSink())
    group.history.attach_storage(InMemoryStorage(), "bench")
    for i in range(size):
        group.history.record_delivery(
            Message(msg_id=f"fill-{i}", dst=frozenset({0, 3, 7}))
        )
    for dest in (3, 7):
        group.diff_tracker.diff_for(dest, group.history)
    counter = {"i": 0}

    def op() -> None:
        counter["i"] += 1
        group.on_client_request(
            Message(msg_id=f"bench-{counter['i']}", dst=frozenset({0, 3, 7}))
        )

    return op


def bench_delivery_round_obs(size: int) -> Callable[[], None]:
    """``delivery_round`` with the full observability layer attached.

    Same steady-state lca round as ``delivery_round``, but the group carries
    a metrics registry *and* a lifecycle tracer
    (:meth:`Observability.with_tracing` — the most expensive configuration:
    every delivery records stage spans on top of the stats counters).  The
    gap to ``delivery_round`` is the instrumentation tax on the hot path,
    which the CI gate bounds at ``--max-obs-overhead`` (1.05 = 5%).
    """
    overlay = CDagOverlay(list(range(12)))
    group = FlexCastGroup(0, overlay, RecordingTransport(0), RecordingSink())
    group.attach_obs(Observability.with_tracing())
    for i in range(size):
        group.history.record_delivery(
            Message(msg_id=f"fill-{i}", dst=frozenset({0, 3, 7}))
        )
    for dest in (3, 7):
        group.diff_tracker.diff_for(dest, group.history)
    counter = {"i": 0}

    def op() -> None:
        counter["i"] += 1
        group.on_client_request(
            Message(msg_id=f"bench-{counter['i']}", dst=frozenset({0, 3, 7}))
        )

    return op


def bench_reconfig_plan(size: int) -> Callable[[], None]:
    """One coordinator re-planning pass with ``size`` observations in the
    window (12-region AWS geometry, Asia-shifted workload)."""
    monitor = WorkloadMonitor(window_ms=1e12)
    asia = (8, 9, 10, 11)
    for i in range(size):
        home = asia[i % 4]
        partner = asia[(i + 1) % 4] if i % 5 else (i % 8)
        monitor.observe(home, {home, partner}, at=float(i))
    snapshot = monitor.snapshot()
    planner = Planner(aws_latency_matrix(), min_samples=1)
    current = list(range(12))

    def op() -> None:
        assert planner.plan(current, snapshot) is not None

    return op


BENCHMARKS: Dict[str, Callable[[int], Callable[[], None]]] = {
    "depends": bench_depends,
    "diff_for": bench_diff_for,
    "diff_for_cold": bench_diff_for_cold,
    "merge_delta": bench_merge_delta,
    "cold_sync": bench_cold_sync,
    "delivery_round": bench_delivery_round,
    "delivery_round_hybrid": bench_delivery_round_hybrid,
    "delivery_round_batched": bench_delivery_round_batched,
    "delivery_round_durable": bench_delivery_round_durable,
    "delivery_round_obs": bench_delivery_round_obs,
    "wal_append": bench_wal_append,
    "recovery_replay": bench_recovery_replay,
    "reconfig_plan": bench_reconfig_plan,
}

#: Application messages processed per measured operation.  ``_measure`` times
#: operations; entries here rescale the report to messages/sec so batched and
#: unbatched delivery benchmarks stay directly comparable.
BENCH_SCALE: Dict[str, int] = {
    "delivery_round_batched": BATCH_WINDOW,
}


def run_batch_sweep(
    batch_sizes: List[int],
    history_size: int,
    repeat: int,
    known: Optional[Dict[int, float]] = None,
) -> Dict[str, object]:
    """Throughput vs batch size at one history size (messages/sec).

    Batch size 1 runs the plain (unbatched) delivery round — by the
    bit-identity contract that *is* what a window of one executes — so the
    per-entry ``speedup`` column reads as "×N over unbatched".  ``known``
    maps windows to msgs/sec already measured elsewhere this run (the main
    benchmark loop covers windows 1 and :data:`BATCH_WINDOW`), so those
    cells are not timed twice.
    """
    known = known or {}
    sweep: Dict[str, object] = {"history_size": history_size, "windows": {}}
    windows: Dict[str, Dict[str, float]] = {}
    # The speedup denominator is always the unbatched round, resolved up
    # front so the column is correct whatever order (or subset) of windows
    # the caller asked for.
    base_msgs = known.get(1)
    if base_msgs is None:
        base_msgs = _measure(bench_delivery_round(history_size), repeat=repeat)[
            "ops_per_sec"
        ]
    for batch in batch_sizes:
        if batch <= 1:
            msgs_per_sec = base_msgs
        elif batch in known:
            msgs_per_sec = known[batch]
        else:
            measurement = _measure(
                bench_delivery_round_batched(history_size, batch=batch),
                repeat=repeat,
            )
            msgs_per_sec = measurement["ops_per_sec"] * batch
        windows[str(batch)] = {
            "messages_per_sec": msgs_per_sec,
            "speedup_vs_unbatched": (
                msgs_per_sec / base_msgs if base_msgs > 0 else 0.0
            ),
        }
        print(
            f"batch_sweep |H|={history_size} window={batch:<3} "
            f"{msgs_per_sec:>14,.0f} msg/s "
            f"({windows[str(batch)]['speedup_vs_unbatched']:.2f}x)"
        )
    sweep["windows"] = windows
    return sweep


def provenance() -> Dict[str, object]:
    """Environment metadata making BENCH_micro.json comparable across PRs."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        ).stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        sha = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "git_sha": sha,
        "timestamp_utc": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
    }


def compare_against_baseline(
    report: Dict[str, object],
    baseline_path: str,
    gate_benchmarks: List[str],
    max_slowdown: float,
) -> List[str]:
    """Regression gate: fresh numbers vs a committed baseline report.

    Returns a list of human-readable failures (empty when the gate passes).
    Benchmarks/sizes absent from either report are skipped, so adding a new
    benchmark never breaks the gate retroactively.
    """
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    failures: List[str] = []
    fresh_benchmarks = report.get("benchmarks", {})
    base_benchmarks = baseline.get("benchmarks", {})
    for name in gate_benchmarks:
        fresh_sizes = fresh_benchmarks.get(name, {})
        base_sizes = base_benchmarks.get(name, {})
        for size, base_entry in base_sizes.items():
            fresh_entry = fresh_sizes.get(size)
            if fresh_entry is None:
                continue
            base_ops = float(base_entry["ops_per_sec"])
            fresh_ops = float(fresh_entry["ops_per_sec"])
            if base_ops > 0 and fresh_ops * max_slowdown < base_ops:
                failures.append(
                    f"{name} |H|={size}: {fresh_ops:,.0f} op/s is more than "
                    f"{max_slowdown:.1f}x slower than baseline {base_ops:,.0f} op/s"
                )
    return failures


def run_tier1() -> Dict[str, object]:
    """Run the tier-1 pytest suite; returns outcome metadata."""
    cmd = [sys.executable, "-m", "pytest", "tests", "-q"]
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    start = time.perf_counter()
    proc = subprocess.run(cmd, cwd=REPO_ROOT, env=env, capture_output=True, text=True)
    elapsed = time.perf_counter() - start
    tail = proc.stdout.strip().splitlines()[-1] if proc.stdout.strip() else ""
    return {
        "command": " ".join(cmd),
        "returncode": proc.returncode,
        "seconds": round(elapsed, 2),
        "summary": tail,
    }


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes",
        default=",".join(str(s) for s in DEFAULT_SIZES),
        help="comma-separated history sizes (default: %(default)s)",
    )
    parser.add_argument(
        "--repeat", type=int, default=3, help="measurement repeats, best kept"
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_micro.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--with-tests",
        action="store_true",
        help="run the tier-1 pytest suite first and record its outcome",
    )
    parser.add_argument(
        "--compare",
        metavar="BASELINE",
        help="regression gate: fail if gated benchmarks are more than "
        "--max-slowdown slower than this baseline report",
    )
    parser.add_argument(
        "--gate",
        default="diff_for,delivery_round,delivery_round_hybrid,"
        "delivery_round_batched,delivery_round_durable,delivery_round_obs,"
        "wal_append,recovery_replay",
        help="comma-separated benchmarks the --compare gate checks "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--batch-sizes",
        default="1,2,4,8,16,32",
        help="batch windows for the throughput-vs-batch-size sweep "
        "(empty to skip; default: %(default)s)",
    )
    parser.add_argument(
        "--min-batch-speedup",
        type=float,
        default=2.0,
        help="with --compare: fail unless delivery_round_batched is at least "
        "this many times the delivery_round message throughput "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--max-durable-overhead",
        type=float,
        default=2.0,
        help="with --compare: fail unless delivery_round_durable stays within "
        "this slowdown factor of delivery_round (default: %(default)s)",
    )
    parser.add_argument(
        "--max-obs-overhead",
        type=float,
        default=1.05,
        help="with --compare: fail unless delivery_round_obs stays within "
        "this slowdown factor of delivery_round (default: %(default)s)",
    )
    parser.add_argument(
        "--max-slowdown",
        type=float,
        default=2.0,
        help="maximum tolerated slowdown factor for gated benchmarks "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--flat",
        default="merge_delta,diff_for_cold,depends",
        help="with --compare: comma-separated benchmarks whose op/s at the "
        "largest history size must stay within --max-flat-ratio of the "
        "smallest size — i.e. the operation is flat in |H| "
        "(empty to skip; default: %(default)s)",
    )
    parser.add_argument(
        "--max-flat-ratio",
        type=float,
        default=3.0,
        help="maximum tolerated min-size/max-size op/s ratio for --flat "
        "benchmarks (default: %(default)s)",
    )
    args = parser.parse_args(argv)
    try:
        sizes = [int(s) for s in args.sizes.split(",") if s.strip()]
    except ValueError:
        parser.error(f"--sizes must be comma-separated integers, got {args.sizes!r}")
    if not sizes:
        parser.error("--sizes must name at least one history size")

    report: Dict[str, object] = {
        "schema": 2,
        "unit": "ops_per_sec",
        "sizes": sizes,
        "provenance": provenance(),
        "benchmarks": {},
    }

    if args.with_tests:
        tier1 = run_tier1()
        report["tier1"] = tier1
        print(f"tier-1: {tier1['summary']} (rc={tier1['returncode']})")
        if tier1["returncode"] != 0:
            json.dump(report, open(args.output, "w"), indent=2)
            return int(tier1["returncode"])

    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name, factory in BENCHMARKS.items():
        results[name] = {}
        scale = BENCH_SCALE.get(name, 1)
        for size in sizes:
            measurement = _measure(factory(size), repeat=args.repeat)
            if scale != 1:
                # Normalize to application messages/sec (one measured op
                # processes a whole batch).
                measurement["ops_per_sec"] *= scale
                measurement["seconds_per_op"] /= scale
                measurement["messages_per_op"] = scale
            results[name][str(size)] = measurement
            unit = "msg/s" if scale != 1 else "op/s"
            print(
                f"{name:>22} |H|={size:<6} "
                f"{measurement['ops_per_sec']:>14,.0f} {unit}"
            )
    report["benchmarks"] = results

    # Instrumentation-tax measurement: delivery_round vs delivery_round_obs,
    # measured *paired* (interleaved repeats) so machine drift between the
    # two standalone table entries above cannot masquerade as overhead.
    obs_overhead: Dict[str, Dict[str, float]] = {}
    for size in sizes:
        paired = _measure_paired(
            bench_delivery_round(size), bench_delivery_round_obs(size)
        )
        obs_overhead[str(size)] = paired
        print(
            f"     obs_overhead(paired) |H|={size:<6} "
            f"{paired['overhead']:>13.3f}x"
        )
    report["obs_overhead"] = obs_overhead

    batch_sizes = [int(b) for b in args.batch_sizes.split(",") if b.strip()]
    if batch_sizes:
        sweep_size = 1000 if 1000 in sizes else sizes[-1]
        known: Dict[int, float] = {}
        plain = results["delivery_round"].get(str(sweep_size))
        if plain is not None:
            known[1] = float(plain["ops_per_sec"])
        batched = results["delivery_round_batched"].get(str(sweep_size))
        if batched is not None:
            # Already scaled to msgs/sec by BENCH_SCALE above.
            known[BATCH_WINDOW] = float(batched["ops_per_sec"])
        report["batch_sweep"] = run_batch_sweep(
            batch_sizes, history_size=sweep_size, repeat=args.repeat, known=known
        )

    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.output}")

    if args.compare:
        gate = [name.strip() for name in args.gate.split(",") if name.strip()]
        failures = compare_against_baseline(
            report, args.compare, gate, args.max_slowdown
        )
        # The batching claim is part of the gate: batched delivery must keep
        # its >=2x message-throughput edge over the unbatched round.
        if args.min_batch_speedup > 0:
            plain = results.get("delivery_round", {})
            batched = results.get("delivery_round_batched", {})
            for size in plain:
                if size not in batched:
                    continue
                plain_ops = float(plain[size]["ops_per_sec"])
                batched_ops = float(batched[size]["ops_per_sec"])
                if plain_ops > 0 and batched_ops < args.min_batch_speedup * plain_ops:
                    failures.append(
                        f"delivery_round_batched |H|={size}: "
                        f"{batched_ops:,.0f} msg/s is below "
                        f"{args.min_batch_speedup:.1f}x delivery_round "
                        f"({plain_ops:,.0f} msg/s)"
                    )
        # The durability claim too: journaling every history mutation must
        # not cost the hot path more than --max-durable-overhead.
        if args.max_durable_overhead > 0:
            plain = results.get("delivery_round", {})
            durable = results.get("delivery_round_durable", {})
            for size in plain:
                if size not in durable:
                    continue
                plain_ops = float(plain[size]["ops_per_sec"])
                durable_ops = float(durable[size]["ops_per_sec"])
                if durable_ops > 0 and plain_ops > args.max_durable_overhead * durable_ops:
                    failures.append(
                        f"delivery_round_durable |H|={size}: "
                        f"{durable_ops:,.0f} op/s is more than "
                        f"{args.max_durable_overhead:.1f}x slower than "
                        f"delivery_round ({plain_ops:,.0f} op/s)"
                    )
        # And the observability claim: the metrics/tracing layer must stay
        # within --max-obs-overhead of the uninstrumented delivery round
        # (the <=5% instrumentation budget).  Checked against the *paired*
        # measurement, not the standalone table rows, so machine drift
        # between rows cannot masquerade as overhead.  The hooks are O(1)
        # per delivery — a real regression shows up at every history size —
        # so the gate takes the minimum over sizes, which filters the
        # additive phase noise a busy runner injects into individual cells.
        if args.max_obs_overhead > 0 and obs_overhead:
            best_size, best = min(
                obs_overhead.items(), key=lambda kv: kv[1]["overhead"]
            )
            if best["overhead"] > args.max_obs_overhead:
                failures.append(
                    f"obs_overhead: instrumented delivery round is "
                    f"{best['overhead']:.3f}x the plain round even at its "
                    f"best size (|H|={best_size}; limit "
                    f"{args.max_obs_overhead:.2f}x; paired "
                    f"{best['variant_ops_per_sec']:,.0f} vs "
                    f"{best['base_ops_per_sec']:,.0f} op/s)"
                )
        # The cold-path claim: operations the snapshot/memo layer made
        # O(affected) must stay flat in |H| — the op/s at the largest
        # history size within --max-flat-ratio of the smallest.  This is a
        # self-check on the fresh numbers (no baseline cell involved), so a
        # baseline regenerated on a slower machine can never mask a cliff.
        if args.flat and args.max_flat_ratio > 0:
            flat_names = [n.strip() for n in args.flat.split(",") if n.strip()]
            for name in flat_names:
                table = results.get(name, {})
                sized = sorted(
                    (int(s), float(entry["ops_per_sec"]))
                    for s, entry in table.items()
                )
                if len(sized) < 2:
                    continue
                small_size, small_ops = sized[0]
                big_size, big_ops = sized[-1]
                if big_ops > 0 and small_ops > args.max_flat_ratio * big_ops:
                    failures.append(
                        f"{name}: not flat in |H| — {big_ops:,.0f} op/s at "
                        f"|H|={big_size} is more than "
                        f"{args.max_flat_ratio:.1f}x below {small_ops:,.0f} "
                        f"op/s at |H|={small_size}"
                    )
        if failures:
            print(f"REGRESSION GATE FAILED vs {args.compare}:")
            for failure in failures:
                print(f"  {failure}")
            return 1
        print(f"regression gate ok vs {args.compare} (gate: {', '.join(gate)})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
