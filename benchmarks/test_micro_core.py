"""Microbenchmarks of the core data structures and protocol hot paths.

These are conventional pytest-benchmark measurements (many iterations) of the
pieces that dominate FlexCast's CPU cost: history merging, transitive
dependency checks, history diffing, and a full lca->destination delivery
round.  They are the regression guard for the optimisation notes in DESIGN.md.
"""

import pytest

from repro.core.flexcast import FlexCastGroup
from repro.core.history import History, HistoryDiffTracker
from repro.core.message import EMPTY_DELTA, FlexCastAck, FlexCastMsg, Message
from repro.overlay.cdag import CDagOverlay
from repro.protocols.base import RecordingSink
from repro.sim.transport import RecordingTransport


def build_chain_history(length=200):
    history = History()
    for i in range(length):
        history.record_delivery(Message(msg_id=f"m{i}", dst=frozenset({i % 4})))
    return history


@pytest.mark.benchmark(group="micro-history")
def test_history_record_delivery(benchmark):
    def run():
        build_chain_history(200)

    benchmark(run)


@pytest.mark.benchmark(group="micro-history")
def test_history_merge_delta(benchmark):
    source = build_chain_history(200)
    delta = source.full_delta()

    def run():
        target = History()
        target.merge_delta(delta)

    benchmark(run)


@pytest.mark.benchmark(group="micro-history")
def test_history_transitive_depends(benchmark):
    history = build_chain_history(300)

    def run():
        assert history.depends("m299", "m0")

    benchmark(run)


@pytest.mark.benchmark(group="micro-history")
def test_history_diff_tracking(benchmark):
    history = build_chain_history(200)

    def run():
        tracker = HistoryDiffTracker()
        tracker.diff_for("peer", history)

    benchmark(run)


@pytest.mark.benchmark(group="micro-protocol")
def test_flexcast_lca_delivery_round(benchmark):
    """One client message delivered at the lca and forwarded to 2 destinations."""
    overlay = CDagOverlay(list(range(12)))
    group = FlexCastGroup(0, overlay, RecordingTransport(0), RecordingSink())
    counter = {"i": 0}

    def run():
        counter["i"] += 1
        group.on_client_request(
            Message(msg_id=f"bench-{counter['i']}", dst=frozenset({0, 3, 7}))
        )

    benchmark(run)


@pytest.mark.benchmark(group="micro-protocol")
def test_flexcast_non_lca_delivery_round(benchmark):
    """msg + ack handling at the highest destination of a 3-group message."""
    overlay = CDagOverlay(list(range(12)))
    counter = {"i": 0}
    group = FlexCastGroup(7, overlay, RecordingTransport(7), RecordingSink())

    def run():
        counter["i"] += 1
        message = Message(msg_id=f"bench-{counter['i']}", dst=frozenset({0, 3, 7}))
        group.on_envelope(0, FlexCastMsg(message=message, history=EMPTY_DELTA))
        group.on_envelope(
            3, FlexCastAck(message=message, history=EMPTY_DELTA, from_group=3)
        )

    benchmark(run)
