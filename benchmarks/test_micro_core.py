"""Microbenchmarks of the core data structures and protocol hot paths.

These are conventional pytest-benchmark measurements (many iterations) of the
pieces that dominate FlexCast's CPU cost: history merging, transitive
dependency checks, history diffing, and a full lca->destination delivery
round.  They are the regression guard for the optimisation notes in DESIGN.md:
the incrementally indexed history must keep ``diff_for`` and the delivery
round flat in |H|, on chain-shaped *and* wide-fanout histories alike.

``benchmarks/run_bench.py`` runs the same shapes standalone and records the
op/sec trajectory in ``BENCH_micro.json``.
"""

import pytest

from repro.core.flexcast import FlexCastGroup
from repro.core.history import History, HistoryDiffTracker
from repro.core.message import EMPTY_DELTA, FlexCastAck, FlexCastMsg, Message
from repro.overlay.cdag import CDagOverlay
from repro.protocols.base import RecordingSink
from repro.sim.transport import RecordingTransport

#: History sizes the indexes are exercised at.  5000 approximates the backlog
#: between two GC flushes under paper-scale load.
SIZES = [200, 1000, 5000]


def build_chain_history(length=200):
    """Chain shape: the per-group total order, each vertex one successor."""
    history = History()
    for i in range(length):
        history.record_delivery(Message(msg_id=f"m{i}", dst=frozenset({i % 4})))
    return history


def build_fanout_history(width=200, hubs=8):
    """Wide-fanout shape: a few hub messages ordered before many others.

    This is what merged ancestor histories look like at a high-ranked group:
    not a chain, but a shallow DAG where a handful of early messages (one per
    ancestor) precede wide layers of concurrent ones.  Backward reachability
    and diff slicing must stay cheap on this shape too.
    """
    history = History()
    hub_ids = []
    for h in range(hubs):
        hub_id = f"hub{h}"
        history.add_vertex(hub_id, frozenset({h % 4}))
        hub_ids.append(hub_id)
    for i in range(width):
        mid = f"f{i}"
        history.add_vertex(mid, frozenset({i % 4}))
        history.add_edge(hub_ids[i % hubs], mid)
    return history


@pytest.mark.benchmark(group="micro-history")
def test_history_record_delivery(benchmark):
    def run():
        build_chain_history(200)

    benchmark(run)


@pytest.mark.benchmark(group="micro-history")
@pytest.mark.parametrize("size", SIZES)
def test_history_merge_delta(benchmark, size):
    source = build_chain_history(size)
    delta = source.full_delta()

    def run():
        target = History()
        target.merge_delta(delta)

    benchmark(run)


@pytest.mark.benchmark(group="micro-history")
def test_history_transitive_depends(benchmark):
    history = build_chain_history(300)

    def run():
        assert history.depends("m299", "m0")

    benchmark(run)


@pytest.mark.benchmark(group="micro-history")
def test_history_depends_wide_fanout(benchmark):
    history = build_fanout_history(width=1000)

    def run():
        # A hub reaches its own layer but no other hub's.
        assert history.depends("f992", "hub0")
        assert not history.depends("f993", "hub0")

    benchmark(run)


@pytest.mark.benchmark(group="micro-history")
@pytest.mark.parametrize("size", SIZES)
def test_history_diff_tracking_bootstrap(benchmark, size):
    """First diff for a new descendant: must ship the whole history."""
    history = build_chain_history(size)

    def run():
        tracker = HistoryDiffTracker()
        tracker.diff_for("peer", history)

    benchmark(run)


@pytest.mark.benchmark(group="micro-history")
@pytest.mark.parametrize("size", SIZES)
def test_history_diff_tracking_steady_state(benchmark, size):
    """Per-send diff cost once the descendant is up to date.

    The acceptance metric for the journal/watermark design: flat in |H|
    instead of a rescan of every vertex and edge per send.
    """
    history = build_chain_history(size)
    tracker = HistoryDiffTracker()
    tracker.diff_for("peer", history)

    def run():
        assert tracker.diff_for("peer", history).is_empty

    benchmark(run)


@pytest.mark.benchmark(group="micro-history")
def test_history_diff_tracking_fanout(benchmark):
    """Steady-state diffs over the wide-fanout shape."""
    history = build_fanout_history(width=1000)
    tracker = HistoryDiffTracker()
    tracker.diff_for("peer", history)
    counter = {"i": 0}

    def run():
        counter["i"] += 1
        mid = f"extra{counter['i']}"
        history.add_vertex(mid, frozenset({1}))
        history.add_edge("hub0", mid)
        delta = tracker.diff_for("peer", history)
        assert len(delta.vertices) == 1 and len(delta.edges) == 1

    benchmark(run)


@pytest.mark.benchmark(group="micro-protocol")
def test_flexcast_lca_delivery_round(benchmark):
    """One client message delivered at the lca and forwarded to 2 destinations."""
    overlay = CDagOverlay(list(range(12)))
    group = FlexCastGroup(0, overlay, RecordingTransport(0), RecordingSink())
    counter = {"i": 0}

    def run():
        counter["i"] += 1
        group.on_client_request(
            Message(msg_id=f"bench-{counter['i']}", dst=frozenset({0, 3, 7}))
        )

    benchmark(run)


@pytest.mark.benchmark(group="micro-protocol")
@pytest.mark.parametrize("size", SIZES)
def test_flexcast_lca_delivery_round_loaded(benchmark, size):
    """Steady-state lca round with |H| = size already accumulated.

    The seed implementation rescanned the whole history per forwarded
    envelope (diffing and Strategy (c) checks), so this used to degrade
    linearly with |H|; with the incremental indexes it must stay flat.
    """
    overlay = CDagOverlay(list(range(12)))
    group = FlexCastGroup(0, overlay, RecordingTransport(0), RecordingSink())
    for i in range(size):
        group.history.record_delivery(
            Message(msg_id=f"fill-{i}", dst=frozenset({0, 3, 7}))
        )
    for dest in (3, 7):
        group.diff_tracker.diff_for(dest, group.history)
    counter = {"i": 0}

    def run():
        counter["i"] += 1
        group.on_client_request(
            Message(msg_id=f"bench-{counter['i']}", dst=frozenset({0, 3, 7}))
        )

    benchmark(run)


@pytest.mark.benchmark(group="micro-protocol")
def test_flexcast_non_lca_delivery_round(benchmark):
    """msg + ack handling at the highest destination of a 3-group message."""
    overlay = CDagOverlay(list(range(12)))
    counter = {"i": 0}
    group = FlexCastGroup(7, overlay, RecordingTransport(7), RecordingSink())

    def run():
        counter["i"] += 1
        message = Message(msg_id=f"bench-{counter['i']}", dst=frozenset({0, 3, 7}))
        group.on_envelope(0, FlexCastMsg(message=message, history=EMPTY_DELTA))
        group.on_envelope(
            3, FlexCastAck(message=message, history=EMPTY_DELTA, from_group=3)
        )

    benchmark(run)
