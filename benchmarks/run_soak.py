#!/usr/bin/env python3
"""Soak benchmark CLI: a process cluster under sustained load, with a verdict.

Thin wrapper over :mod:`repro.workload.soak`: parse knobs, run one soak
against a real N-groups × M-replicas process cluster, write
``BENCH_soak.json``, print a human summary, and exit non-zero if the oracle
found any violation (loss, duplication, resubmit exhaustion, or cross-replica
divergence).  The report schema is documented in DESIGN.md next to the
BENCH_micro.json provenance notes.

Examples
--------
Tier-1-sized smoke (seconds)::

    PYTHONPATH=src python benchmarks/run_soak.py \
        --messages 10000 --clients 200 --output BENCH_soak.json

The acceptance-scale run (>= 1M messages, kill + restart mid-run)::

    PYTHONPATH=src python benchmarks/run_soak.py \
        --messages 1000000 --clients 2000 \
        --kill-at 0.3 --restart-at 0.5 --output BENCH_soak.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description=__doc__.split("\n", 1)[0],
        epilog="Cluster topology and operations: docs/OPERATIONS.md.",
    )
    parser.add_argument("--groups", type=int, default=2)
    parser.add_argument("--replication", type=int, default=3)
    parser.add_argument("--hybrid", action="store_true",
                        help="enable the hybrid Skeen-timestamp authority")
    parser.add_argument("--messages", type=int, default=1_000_000)
    parser.add_argument("--clients", type=int, default=2000,
                        help="logical closed-loop clients")
    parser.add_argument("--inflight", type=int, default=4,
                        help="outstanding messages per logical client")
    parser.add_argument("--global-fraction", type=float, default=0.2)
    parser.add_argument("--payload-bytes", type=int, default=64)
    parser.add_argument("--batch", type=int, default=128,
                        help="ingress batching window size")
    parser.add_argument("--delay-ms", type=float, default=10.0,
                        help="ingress batching window delay")
    parser.add_argument("--timeout-ms", type=float, default=30_000.0,
                        help="per-message resubmit timeout (keep well above "
                        "outstanding/throughput queueing latency)")
    parser.add_argument("--retries", type=int, default=6)
    parser.add_argument("--flush-every-ms", type=float, default=500.0,
                        help="GC flush cadence (0 disables)")
    parser.add_argument("--kill-at", type=float, default=None,
                        help="SIGKILL one replica at this completed fraction")
    parser.add_argument("--restart-at", type=float, default=None,
                        help="restart it at this completed fraction")
    parser.add_argument("--kill-group", type=int, default=0)
    parser.add_argument("--kill-replica", type=int, default=2)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--storage-root", default=None,
                        help="WAL directory (default: a fresh tmpdir)")
    parser.add_argument("--drain-timeout", type=float, default=300.0,
                        help="abort after this long without progress")
    parser.add_argument("--restart-ready-timeout", type=float, default=600.0,
                        help="ready timeout for the restarted victim "
                        "(it replays its commit log first)")
    parser.add_argument("--convergence-timeout", type=float, default=360.0,
                        help="post-drain wait for cross-replica agreement "
                        "(the victim re-applies the suffix it missed)")
    parser.add_argument("--deep-check", action="store_true",
                        help="force the full-sequence oracle at any scale")
    parser.add_argument("--output", default="BENCH_soak.json")
    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = parse_args(argv)
    from repro.workload.soak import SoakConfig, run_soak

    config = SoakConfig(
        groups=args.groups,
        replication=args.replication,
        hybrid=args.hybrid,
        storage_root=args.storage_root,
        messages=args.messages,
        clients=args.clients,
        inflight_per_client=args.inflight,
        global_fraction=args.global_fraction,
        payload_bytes=args.payload_bytes,
        max_batch=args.batch,
        max_delay_ms=args.delay_ms,
        timeout_ms=args.timeout_ms,
        max_retries=args.retries,
        flush_every_ms=args.flush_every_ms,
        kill_at=args.kill_at,
        restart_at=args.restart_at,
        kill_target=(args.kill_group, args.kill_replica),
        seed=args.seed,
        drain_timeout=args.drain_timeout,
        restart_ready_timeout=args.restart_ready_timeout,
        convergence_timeout=args.convergence_timeout,
        deep_check=True if args.deep_check else None,
    )
    report = asyncio.run(run_soak(config))

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    totals = report["totals"]
    latency = report["latency_ms"]["delivery"]
    print(
        f"soak: {totals['completed']}/{totals['issued']} messages in "
        f"{totals['wall_s']:.1f}s = {totals['throughput_msg_per_s']:.0f} msg/s"
    )
    print(
        f"delivery latency ms: p50={latency['p50']} p99={latency['p99']} "
        f"p999={latency['p999']} max={latency['max']}"
    )
    print(
        f"retries={totals['retries']} exhausted={totals['exhausted']} "
        f"batches={totals['batches_sent']} skew={report['skew_max_over_mean']}"
    )
    for gid, info in sorted(report["per_group"].items()):
        print(f"group {gid}: delivered={info['delivered']} converged={info['converged']}")
    violations = report["oracle"]["violations"]
    if violations:
        print(f"ORACLE VIOLATIONS ({len(violations)}):", file=sys.stderr)
        for violation in violations:
            print(f"  - {violation}", file=sys.stderr)
        return 1
    print(f"oracle: clean ({args.output} written)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
