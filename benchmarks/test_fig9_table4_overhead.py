"""Figure 9 / Table 4 — hierarchical overhead across trees and localities.

Paper reference: T1's mean overhead decreases as locality grows (9.16% ->
5.41%); T3 concentrates its (locality-independent) overhead on the root, which
endures 56% while every other group has none; trees with better latency have
higher mean overhead.
"""

import pytest

from repro.experiments.figures import figure9_table4
from repro.overlay.builders import build_t3
from repro.sim.latencies import aws_latency_matrix


@pytest.mark.benchmark(group="figure9")
def test_figure9_table4_overhead(benchmark, quick_scale):
    result = benchmark.pedantic(
        figure9_table4, args=(quick_scale,), rounds=1, iterations=1
    )
    print("\n" + result.text)
    table4 = {(row["overlay"], row["locality"]): row for row in result.data["table4"]}
    per_group = result.data["per_group_percent"]

    assert set(table4) == {
        (overlay, locality)
        for overlay in ("T1", "T2", "T3")
        for locality in (0.90, 0.95, 0.99)
    }

    # Every tree has some overhead at every locality (non-genuine protocol).
    assert all(row["mean_percent"] > 0 for row in table4.values())

    # T1's overhead decreases as locality increases (Table 4's headline trend).
    assert table4[("T1", 0.99)]["mean_percent"] < table4[("T1", 0.90)]["mean_percent"]

    # T3 is a star: all its overhead lands on the root, which is by far the
    # most penalised group in the whole experiment (paper: 56%).
    t3_root = build_t3(aws_latency_matrix()).root
    for locality in (0.90, 0.95, 0.99):
        series = per_group[f"T3 @{int(locality * 100)}%"]
        assert max(series, key=series.get) == t3_root
        assert series[t3_root] > 25.0
        leaves = [g for g in series if g != t3_root]
        assert all(series[g] == pytest.approx(0.0, abs=1e-9) for g in leaves)

    # Concentration effect: in T3 the root carries essentially all the
    # overhead (max far above the mean), whereas T1 spreads it over several
    # inner groups.
    t3_row = table4[("T3", 0.90)]
    assert t3_row["max_percent"] > 3 * t3_row["mean_percent"]
    t1_series = per_group["T1 @90%"]
    t3_series = per_group["T3 @90%"]
    groups_with_overhead = lambda series: sum(1 for v in series.values() if v > 1.0)
    assert groups_with_overhead(t1_series) > groups_with_overhead(t3_series) == 1
