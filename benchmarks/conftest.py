"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures at a reduced
scale (shorter virtual duration, fewer clients) so the whole harness runs in a
few minutes.  The scale can be raised with environment variables for closer
comparisons:

* ``REPRO_BENCH_DURATION_MS`` — virtual milliseconds of load per experiment
  (default 2500; the paper runs ~60 000).
* ``REPRO_BENCH_CLIENTS`` — number of closed-loop clients (default 24; the
  paper uses 240 for latency experiments).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.scenarios import Scale


def _env_float(name: str, default: float) -> float:
    try:
        return float(os.environ.get(name, default))
    except ValueError:
        return default


@pytest.fixture(scope="session")
def bench_scale() -> Scale:
    """Scaled-down experiment size used by all figure benchmarks."""
    return Scale(
        duration_ms=_env_float("REPRO_BENCH_DURATION_MS", 2_500.0),
        num_clients=int(_env_float("REPRO_BENCH_CLIENTS", 24)),
        seed=1,
    )


@pytest.fixture(scope="session")
def quick_scale() -> Scale:
    """Even smaller scale for the many-experiment sweeps (Figures 6, 7, 9)."""
    return Scale(
        duration_ms=_env_float("REPRO_BENCH_DURATION_MS", 2_000.0),
        num_clients=int(_env_float("REPRO_BENCH_CLIENTS", 24)),
        seed=1,
    )
