"""Figure 6 — throughput vs number of clients (99% locality, full gTPC-C mix).

Paper reference: all three protocols sustain the same throughput as load grows
(the curves overlap) until FlexCast bends first at its saturation point.  In
the simulator none of the protocols saturate a CPU, so the reproduced shape is
the overlapping linear region: throughput grows with the number of clients and
the three protocols stay within the same band.
"""

import pytest

from repro.experiments.figures import figure6


CLIENT_COUNTS = (6, 12, 24, 48)


@pytest.mark.benchmark(group="figure6")
def test_figure6_throughput_vs_clients(benchmark, quick_scale):
    result = benchmark.pedantic(
        figure6, args=(quick_scale,), kwargs={"client_counts": CLIENT_COUNTS},
        rounds=1, iterations=1,
    )
    print("\n" + result.text)
    series = result.data["throughput_ops_per_sec"]

    assert set(series) == {"FlexCast O1", "Hierarchical T1", "Distributed"}
    for label, points in series.items():
        assert set(points) == set(CLIENT_COUNTS), label
        # Throughput grows with offered load (closed-loop clients) while the
        # system is below saturation.
        assert points[CLIENT_COUNTS[-1]] > points[CLIENT_COUNTS[0]], label

    # The three protocols track each other: at every client count the spread
    # between the fastest and slowest protocol stays within a factor of two
    # (the paper's curves essentially overlap until saturation).
    for clients in CLIENT_COUNTS:
        values = [series[label][clients] for label in series]
        assert max(values) <= 2.5 * min(values), f"divergence at {clients} clients"
