"""Ablation — flush-based garbage collection (§4.3, DESIGN.md §4).

Compares FlexCast with and without the flush coordinator: GC must keep
per-group histories bounded (instead of retaining every delivered message)
without changing latency behaviour or breaking ordering.
"""

import pytest

from repro.experiments.config import flexcast_config
from repro.experiments.runner import run_experiment

SCALE = dict(num_clients=24, duration_ms=2_500.0, seed=4)


def run_pair():
    with_gc = run_experiment(flexcast_config(gc_interval_ms=500.0, **SCALE))
    without_gc = run_experiment(flexcast_config(gc_interval_ms=None, **SCALE))
    return with_gc, without_gc


@pytest.mark.benchmark(group="ablation-gc")
def test_gc_bounds_history_growth(benchmark):
    with_gc, without_gc = benchmark.pedantic(run_pair, rounds=1, iterations=1)

    max_with = max(g.history_size() for g in with_gc.groups.values())
    max_without = max(g.history_size() for g in without_gc.groups.values())
    print(
        f"\nmax history size: GC on = {max_with} vertices, "
        f"GC off = {max_without} vertices "
        f"({with_gc.completed} / {without_gc.completed} transactions completed)"
    )

    # Without GC the largest history retains a large fraction of everything
    # ever delivered; with GC it stays a small fraction of that.
    assert max_with < max_without / 2

    # GC does not break the protocol: every issued transaction still completes.
    assert with_gc.completed == with_gc.issued
    assert without_gc.completed == without_gc.issued
    # Flush messages are multicast to *all* groups, so an aggressive 500 ms
    # flush period adds cross-group synchronisation and some latency; it must
    # stay within a small factor of the GC-free run (the experiments use a
    # 2 s period, where the effect is negligible).
    lat_with = with_gc.latency.percentile_table()[1][90]
    lat_without = without_gc.latency.percentile_table()[1][90]
    assert lat_with < lat_without * 4.0
