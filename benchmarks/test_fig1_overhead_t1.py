"""Figure 1 — communication overhead per group (hierarchical T1, 90% locality).

Paper reference values: groups incur ~10% overhead on average; the two
continental subtree roots suffer the most (about 23% and 36%); leaves have
none.  The benchmark regenerates the per-group series and checks that shape.
"""

import pytest

from repro.experiments.figures import figure1
from repro.overlay.builders import build_t1
from repro.sim.latencies import aws_latency_matrix


@pytest.mark.benchmark(group="figure1")
def test_figure1_hierarchical_overhead(benchmark, bench_scale):
    result = benchmark.pedantic(figure1, args=(bench_scale,), rounds=1, iterations=1)
    print("\n" + result.text)

    overhead = result.data["overhead_percent_by_group"]
    tree = build_t1(aws_latency_matrix())

    # Leaves never relay messages, so they have zero overhead.
    for group in tree.groups:
        if tree.is_leaf(group):
            assert overhead[group] == pytest.approx(0.0, abs=1e-9)

    # Some inner groups do relay: the average is positive and within the same
    # order of magnitude as the paper's ~10%.
    assert result.data["mean_percent"] > 1.0
    assert result.data["mean_percent"] < 40.0

    # The worst-hit group is an inner group with substantially more overhead
    # than the average (paper: 36% vs 9.2% mean).
    assert result.data["max_percent"] > result.data["mean_percent"]
    worst = max(overhead, key=overhead.get)
    assert not tree.is_leaf(worst)
