#!/usr/bin/env python3
"""Quickstart: atomic multicast with FlexCast on a simulated 5-region WAN.

This example builds the smallest useful FlexCast deployment:

* five groups (A-E) arranged on a complete DAG overlay (paper Figure 2c),
* a simulated wide-area network with per-link latencies,
* a handful of multicast messages with overlapping destination sets.

It then prints the delivery order observed at every group and verifies the
atomic multicast properties with the built-in trace checker.

Run with:  python examples/quickstart.py
"""

from repro.checker import check_trace
from repro.core.flexcast import FlexCastProtocol
from repro.core.message import ClientRequest, Message
from repro.overlay.cdag import CDagOverlay
from repro.protocols.base import RecordingSink
from repro.sim.events import EventLoop
from repro.sim.latencies import LatencyMatrix
from repro.sim.network import Network
from repro.sim.transport import SimTransport


def main() -> None:
    # ----------------------------------------------------------- deployment
    groups = ["A", "B", "D", "E", "C"]  # rank order, exactly as in Figure 2(c)
    overlay = CDagOverlay(groups)
    protocol = FlexCastProtocol(overlay)

    # A small latency matrix (one-way milliseconds between the five sites).
    latencies = LatencyMatrix(
        matrix=[
            [1, 10, 25, 40, 80],
            [10, 1, 15, 30, 70],
            [25, 15, 1, 20, 55],
            [40, 30, 20, 1, 35],
            [80, 70, 55, 35, 1],
        ],
        names=groups,
    )

    loop = EventLoop()
    network = Network(loop, latencies)
    sink = RecordingSink(clock=lambda: loop.now)

    for site, gid in enumerate(groups):
        transport = SimTransport(network, gid)
        group = protocol.create_group(gid, transport, sink)
        network.register(gid, site=site, handler=group.on_envelope)

    # A client located next to group A.
    network.register("client", site=0, handler=lambda sender, payload: None)

    # ------------------------------------------------------------ multicast
    workload = [
        {"A", "C"},
        {"A", "B"},
        {"B", "C"},
        {"D", "E", "C"},
        {"A", "D"},
        {"B", "E"},
    ]
    messages = []
    for i, destinations in enumerate(workload):
        message = Message.create(destinations, sender="client", msg_id=f"m{i}")
        messages.append(message)
        # FlexCast messages enter the overlay at their lca (lowest destination).
        entry = protocol.entry_groups(message)[0]
        loop.schedule(
            i * 5.0,
            lambda entry=entry, message=message: network.send(
                "client", entry, ClientRequest(message=message)
            ),
        )

    loop.run_until_idle()

    # -------------------------------------------------------------- results
    print("Delivery order per group (message ids):")
    for gid in groups:
        print(f"  {gid}: {sink.sequence(gid)}")

    report = check_trace(sink, messages, expect_all_delivered=True)
    report.raise_if_failed()
    print("\nAll atomic multicast properties hold "
          "(validity, agreement, integrity, prefix order, acyclic order).")
    print(f"Simulated time: {loop.now:.1f} ms, "
          f"network messages: {network.total_messages}")


if __name__ == "__main__":
    main()
