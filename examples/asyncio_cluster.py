#!/usr/bin/env python3
"""Run the protocols over real TCP sockets (asyncio runtime).

Starts a localhost cluster with one TCP server per group — optionally
emulating the AWS wide-area latencies on every connection, the same technique
the paper uses on CloudLab — and multicasts a few messages from an asyncio
client, printing the per-destination response latencies.

Run with:  python examples/asyncio_cluster.py [--protocol flexcast|flexcast-hybrid|hierarchical|distributed] [--emulate-wan]
"""

import argparse
import asyncio

from repro.overlay.builders import build_complete, build_o1, build_t1
from repro.core.flexcast import FlexCastProtocol
from repro.protocols.hierarchical import HierarchicalProtocol
from repro.protocols.skeen import SkeenProtocol
from repro.runtime.cluster import LocalCluster
from repro.sim.latencies import aws_latency_matrix


def build_protocol(name: str):
    latencies = aws_latency_matrix()
    if name == "flexcast":
        return FlexCastProtocol(build_o1(latencies)), latencies
    if name == "flexcast-hybrid":
        # Skeen-timestamp ordering authority fused in: global messages also
        # acquire final timestamps (ts-propose envelopes over the real wire).
        return FlexCastProtocol(build_o1(latencies), hybrid=True), latencies
    if name == "hierarchical":
        return HierarchicalProtocol(build_t1(latencies)), latencies
    if name == "distributed":
        return SkeenProtocol(build_complete(latencies)), latencies
    raise SystemExit(f"unknown protocol {name!r}")


async def run(protocol_name: str, emulate_wan: bool) -> None:
    protocol, latencies = build_protocol(protocol_name)
    print(f"starting {protocol.describe()} on localhost "
          f"({'emulated WAN latencies' if emulate_wan else 'raw loopback'}) ...")
    async with LocalCluster(protocol, latencies=latencies, emulate_wan=emulate_wan) as cluster:
        client = await cluster.new_client("client-1")
        workloads = [
            [0, 1],
            [2, 5, 7],
            [3, 4],
            [0, 8],
            [6, 7],
        ]
        for destinations in workloads:
            latencies_ms = await client.multicast(destinations, payload="demo", timeout=30.0)
            pretty = ", ".join(
                f"group {g}: {ms:6.1f} ms" for g, ms in sorted(latencies_ms.items())
            )
            print(f"  multicast to {destinations!s:<12} -> {pretty}")

        sizes = {gid: len(cluster.delivered_at(gid)) for gid in protocol.groups}
        print("deliveries per group:", {g: n for g, n in sizes.items() if n})


def main() -> None:
    parser = argparse.ArgumentParser(
        description=__doc__,
        epilog=(
            "This demo runs every group in ONE process (LocalCluster).  For "
            "N groups x M replicas as separate OS processes with per-replica "
            "WAL durability and kill/restart supervision, use "
            "repro.runtime.proc.ProcessCluster — see docs/OPERATIONS.md."
        ),
    )
    parser.add_argument("--protocol", default="flexcast",
                        choices=["flexcast", "flexcast-hybrid", "hierarchical", "distributed"])
    parser.add_argument("--emulate-wan", action="store_true",
                        help="inject AWS inter-region latencies on every connection")
    args = parser.parse_args()
    asyncio.run(run(args.protocol, args.emulate_wan))


if __name__ == "__main__":
    main()
