#!/usr/bin/env python3
"""gTPC-C protocol comparison on the emulated AWS wide-area network.

Reproduces the core of the paper's evaluation at a small scale: the same
geo-distributed TPC-C workload (gTPC-C) is run against FlexCast (overlay O1),
the hierarchical tree protocol (T1) and the distributed protocol (Skeen), and
the per-destination latency percentiles plus communication overhead are
printed side by side — the rows of Tables 2/3 and Figure 1.

Run with:  python examples/gtpcc_comparison.py [--locality 0.95] [--clients 36]
"""

import argparse

from repro.experiments.config import (
    distributed_config,
    flexcast_config,
    hierarchical_config,
)
from repro.experiments.runner import run_experiment
from repro.metrics.report import format_latency_comparison, format_overhead_report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--locality", type=float, default=0.90,
                        help="gTPC-C locality rate (paper: 0.90, 0.95, 0.99)")
    parser.add_argument("--clients", type=int, default=36,
                        help="number of closed-loop clients")
    parser.add_argument("--duration-ms", type=float, default=4_000.0,
                        help="virtual milliseconds of load")
    args = parser.parse_args()

    shared = dict(
        locality=args.locality,
        num_clients=args.clients,
        duration_ms=args.duration_ms,
        seed=7,
    )
    configs = [
        flexcast_config(overlay="O1", **shared),
        hierarchical_config(overlay="T1", **shared),
        distributed_config(**shared),
    ]

    tables = {}
    overheads = {}
    for config in configs:
        print(f"running {config.display_label} "
              f"({config.num_clients} clients, locality {config.locality:.0%}) ...")
        result = run_experiment(config)
        tables[config.display_label] = result.latency_table()
        overheads[config.display_label] = result.overhead
        print(f"  completed {result.completed} transactions "
              f"({result.throughput_ops_per_sec:.0f} ops/s)")

    print("\nPer-destination latency percentiles (ms), "
          f"gTPC-C global transactions at {args.locality:.0%} locality:")
    print(format_latency_comparison(tables))

    print("\nCommunication overhead (only the non-genuine protocol has any):")
    for label, report in overheads.items():
        print(f"\n{format_overhead_report(label, report)}")


if __name__ == "__main__":
    main()
