#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation section.

Each figure/table is produced by the corresponding function in
``repro.experiments.figures``; this script is a thin CLI over them.  The
default scale is small enough to run everything in a few minutes; raise
``--duration-ms`` and ``--clients`` for closer (slower) comparisons.

Run with:
  python examples/paper_figures.py               # everything
  python examples/paper_figures.py --figure 5    # only Figure 5 / Table 2
"""

import argparse

from repro.experiments.figures import ALL_FIGURES
from repro.experiments.scenarios import Scale


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--figure", choices=sorted(ALL_FIGURES), default=None,
                        help="regenerate a single figure (default: all)")
    parser.add_argument("--duration-ms", type=float, default=4_000.0,
                        help="virtual milliseconds of load per experiment")
    parser.add_argument("--clients", type=int, default=36,
                        help="closed-loop clients per experiment")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    scale = Scale(duration_ms=args.duration_ms, num_clients=args.clients, seed=args.seed)
    targets = [args.figure] if args.figure else sorted(ALL_FIGURES)
    for key in targets:
        print(f"\n{'=' * 78}")
        result = ALL_FIGURES[key](scale)
        print(f"{result.name}\n{'-' * 78}")
        print(result.text)


if __name__ == "__main__":
    main()
