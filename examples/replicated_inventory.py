#!/usr/bin/env python3
"""A strongly consistent multi-warehouse inventory service on atomic multicast.

This is the application the paper's introduction motivates: a wholesale supply
system whose warehouses live in different AWS regions.  Stock transfers touch
two warehouses and must be applied in the same relative order everywhere,
otherwise warehouses disagree about stock levels.

Part 1 builds exactly that with FlexCast providing the ordering across the 12
AWS regions: every transfer is multicast to the two involved warehouses, and
because atomic multicast guarantees prefix/acyclic order, both endpoints apply
conflicting transfers in the same order.  The example verifies the final stock
against a sequential replay.

Part 2 shows the paper's §4.4 fault-tolerance story on a single group: the
warehouse group is replicated with multi-Paxos (three replicas), keeps
processing stock adjustments after its leader replica crashes, and all
surviving replicas hold identical state.

Run with:  python examples/replicated_inventory.py
"""

import random

from repro.core.flexcast import FlexCastProtocol
from repro.core.message import ClientRequest, Message
from repro.overlay.builders import build_o1
from repro.overlay.cdag import CDagOverlay
from repro.sim.events import EventLoop
from repro.sim.latencies import LatencyMatrix, aws_latency_matrix
from repro.sim.network import Network
from repro.sim.transport import SimTransport
from repro.smr.replica import ReplicatedGroup

ITEMS = ["widget", "gadget", "sprocket"]
INITIAL_STOCK = 1_000


class Warehouse:
    """Deterministic state machine applied to delivered transfer messages."""

    def __init__(self, warehouse_id: int) -> None:
        self.warehouse_id = warehouse_id
        self.stock = {item: INITIAL_STOCK for item in ITEMS}
        self.applied = []

    def apply(self, transfer: dict) -> None:
        item, quantity = transfer["item"], transfer["quantity"]
        if transfer["from"] == self.warehouse_id:
            self.stock[item] -= quantity
        if transfer["to"] == self.warehouse_id:
            self.stock[item] += quantity
        self.applied.append(transfer["id"])


def geo_distributed_inventory() -> None:
    """Part 1: cross-warehouse transfers ordered by FlexCast on 12 regions."""
    latencies = aws_latency_matrix()
    overlay = build_o1(latencies)
    protocol = FlexCastProtocol(overlay)

    loop = EventLoop()
    network = Network(loop, latencies, jitter_ms=2.0, seed=11)
    warehouses = {gid: Warehouse(gid) for gid in overlay.groups}

    def sink(group_id, message):
        warehouses[group_id].apply(message.payload)

    for gid in overlay.groups:
        group = protocol.create_group(gid, SimTransport(network, gid), sink)
        network.register(gid, site=gid, handler=group.on_envelope)
    network.register("coordinator", site=0, handler=lambda s, p: None)

    rng = random.Random(3)
    transfers = []
    for i in range(300):
        src, dst = rng.sample(overlay.groups, 2)
        transfer = {
            "id": f"t{i}",
            "item": rng.choice(ITEMS),
            "quantity": rng.randint(1, 20),
            "from": src,
            "to": dst,
        }
        transfers.append(transfer)
        message = Message.create(
            [src, dst], sender="coordinator", payload=transfer, payload_bytes=96
        )
        entry = protocol.entry_groups(message)[0]
        loop.schedule(
            rng.uniform(0, 1_500.0),
            lambda entry=entry, message=message: network.send(
                "coordinator", entry, ClientRequest(message=message)
            ),
        )
    loop.run_until_idle()

    # Sequential replay gives the expected final stock.
    expected = {gid: Warehouse(gid) for gid in overlay.groups}
    for transfer in transfers:
        expected[transfer["from"]].apply(transfer)
        expected[transfer["to"]].apply(transfer)

    mismatches = sum(
        1 for gid in overlay.groups if warehouses[gid].stock != expected[gid].stock
    )
    total_units = sum(sum(w.stock.values()) for w in warehouses.values())
    expected_units = len(warehouses) * len(ITEMS) * INITIAL_STOCK

    print("Part 1 — geo-distributed inventory on FlexCast (12 AWS regions)")
    print(f"  transfers multicast          : {len(transfers)}")
    print(f"  total stock after the run    : {total_units} units (expected {expected_units})")
    print(f"  warehouses matching replay   : {len(warehouses) - mismatches}/{len(warehouses)}")
    if mismatches or total_units != expected_units:
        raise SystemExit("inconsistent stock — atomic multicast ordering violated!")
    print("  every conflicting transfer was applied in the same order at both endpoints\n")


def replicated_warehouse_failover() -> None:
    """Part 2: one warehouse group survives the crash of its leader replica."""
    loop = EventLoop()
    latencies = LatencyMatrix(matrix=[[0.5, 5], [5, 0.5]], names=["wh", "clients"])
    network = Network(loop, latencies, jitter_ms=0.5, seed=5)
    protocol = FlexCastProtocol(CDagOverlay([0]))

    warehouse = Warehouse(0)
    delivered = []

    def sink(group_id, message):
        warehouse.apply(message.payload)
        delivered.append(message.msg_id)

    group = ReplicatedGroup(
        group_id=0, protocol=protocol, network=network, site=0, sink=sink,
        replication_factor=3,
    )
    network.register("client", site=1, handler=lambda s, p: None)

    rng = random.Random(9)
    adjustments = []
    for i in range(60):
        adjustment = {
            "id": f"a{i}",
            "item": rng.choice(ITEMS),
            "quantity": rng.randint(1, 5),
            "from": -1,      # external supplier
            "to": 0,
        }
        adjustments.append(adjustment)
        message = Message.create(
            [0], sender="client", payload=adjustment, payload_bytes=64, msg_id=f"a{i}"
        )
        loop.schedule(
            i * 10.0,
            lambda message=message: network.send(
                "client", group.leader.replica_id, ClientRequest(message=message)
            ),
        )
    # Crash the initial leader a third of the way through the run.
    loop.schedule(205.0, lambda: group.crash_replica(0, network))
    loop.run_until_idle()

    survivors = [r for i, r in enumerate(group.replicas) if i != 0]
    logs = group.delivered_sequences()
    print("Part 2 — replicated warehouse group (multi-Paxos, 3 replicas)")
    print(f"  adjustments submitted        : {len(adjustments)}")
    print(f"  delivered to the application : {len(delivered)}")
    print(f"  leader after the crash       : {group.leader.replica_id}")
    agree = logs[survivors[0].replica_id] == logs[survivors[1].replica_id]
    print(f"  surviving replicas agree     : {agree}")
    if not agree or len(delivered) < len(adjustments) * 0.9:
        raise SystemExit("replicated group lost consistency or too many adjustments!")
    print("  the group kept ordering and applying adjustments across the fail-over")


def main() -> None:
    geo_distributed_inventory()
    replicated_warehouse_failover()


if __name__ == "__main__":
    main()
