#!/usr/bin/env python3
"""A strongly consistent multi-warehouse inventory service on atomic multicast.

This is the application the paper's introduction motivates: a wholesale supply
system whose warehouses live in different AWS regions.  Stock transfers touch
two warehouses and must be applied in the same relative order everywhere,
otherwise warehouses disagree about stock levels.

Part 1 builds exactly that with FlexCast providing the ordering across the 12
AWS regions: every transfer is multicast to the two involved warehouses, and
because atomic multicast guarantees prefix/acyclic order, both endpoints apply
conflicting transfers in the same order.  The example verifies the final stock
against a sequential replay.

Part 2 shows the paper's §4.4 fault-tolerance story on a single group: the
warehouse group is replicated with multi-Paxos (three replicas), keeps
processing stock adjustments after its leader replica crashes, and all
surviving replicas hold identical state.

Both parts are deterministic: all randomness flows through explicitly seeded
``random.Random`` instances, so every run prints the same numbers, and the
test suite executes the same entry points (``run_geo_distributed`` /
``run_replicated_failover``) and replays their traces through the checker
(``tests/examples/test_examples_run.py``).

Run with:  python examples/replicated_inventory.py
"""

from random import Random

from repro.core.flexcast import FlexCastProtocol
from repro.core.message import ClientRequest, Message
from repro.overlay.builders import build_o1
from repro.overlay.cdag import CDagOverlay
from repro.protocols.base import RecordingSink
from repro.sim.events import EventLoop
from repro.sim.latencies import LatencyMatrix, aws_latency_matrix
from repro.sim.network import Network
from repro.sim.transport import SimTransport
from repro.smr.replica import ReplicatedGroup

ITEMS = ["widget", "gadget", "sprocket"]
INITIAL_STOCK = 1_000


class Warehouse:
    """Deterministic state machine applied to delivered transfer messages."""

    def __init__(self, warehouse_id: int) -> None:
        self.warehouse_id = warehouse_id
        self.stock = {item: INITIAL_STOCK for item in ITEMS}
        self.applied = []

    def apply(self, transfer: dict) -> None:
        item, quantity = transfer["item"], transfer["quantity"]
        if transfer["from"] == self.warehouse_id:
            self.stock[item] -= quantity
        if transfer["to"] == self.warehouse_id:
            self.stock[item] += quantity
        self.applied.append(transfer["id"])


def run_geo_distributed(
    workload_rng: Random = None,
    jitter_seed: int = 11,
    num_transfers: int = 300,
):
    """Part 1 as a reusable function: returns everything the checks need.

    ``workload_rng`` is the single source of workload randomness (defaults to
    the canonical ``Random(3)``); the network jitter stream is seeded
    separately so both are reproducible in isolation.
    """
    rng = workload_rng if workload_rng is not None else Random(3)
    latencies = aws_latency_matrix()
    overlay = build_o1(latencies)
    protocol = FlexCastProtocol(overlay)

    loop = EventLoop()
    network = Network(loop, latencies, jitter_ms=2.0, seed=jitter_seed)
    warehouses = {gid: Warehouse(gid) for gid in overlay.groups}
    trace = RecordingSink(clock=lambda: loop.now)

    def sink(group_id, message):
        warehouses[group_id].apply(message.payload)
        trace(group_id, message)

    for gid in overlay.groups:
        group = protocol.create_group(gid, SimTransport(network, gid), sink)
        network.register(gid, site=gid, handler=group.on_envelope)
    network.register("coordinator", site=0, handler=lambda s, p: None)

    transfers = []
    messages = []
    for i in range(num_transfers):
        src, dst = rng.sample(overlay.groups, 2)
        transfer = {
            "id": f"t{i}",
            "item": rng.choice(ITEMS),
            "quantity": rng.randint(1, 20),
            "from": src,
            "to": dst,
        }
        transfers.append(transfer)
        message = Message.create(
            [src, dst], sender="coordinator", payload=transfer, payload_bytes=96
        )
        messages.append(message)
        entry = protocol.entry_groups(message)[0]
        loop.schedule(
            rng.uniform(0, 1_500.0),
            lambda entry=entry, message=message: network.send(
                "coordinator", entry, ClientRequest(message=message)
            ),
        )
    loop.run_until_idle()

    # Sequential replay gives the expected final stock.
    expected = {gid: Warehouse(gid) for gid in overlay.groups}
    for transfer in transfers:
        expected[transfer["from"]].apply(transfer)
        expected[transfer["to"]].apply(transfer)

    mismatches = sum(
        1 for gid in overlay.groups if warehouses[gid].stock != expected[gid].stock
    )
    total_units = sum(sum(w.stock.values()) for w in warehouses.values())
    expected_units = len(warehouses) * len(ITEMS) * INITIAL_STOCK
    return {
        "overlay": overlay,
        "transfers": transfers,
        "messages": messages,
        "trace": trace,
        "warehouses": warehouses,
        "mismatches": mismatches,
        "total_units": total_units,
        "expected_units": expected_units,
    }


def geo_distributed_inventory() -> None:
    """Part 1: cross-warehouse transfers ordered by FlexCast on 12 regions."""
    result = run_geo_distributed()
    num_warehouses = len(result["warehouses"])
    print("Part 1 — geo-distributed inventory on FlexCast (12 AWS regions)")
    print(f"  transfers multicast          : {len(result['transfers'])}")
    print(
        f"  total stock after the run    : {result['total_units']} units "
        f"(expected {result['expected_units']})"
    )
    print(
        f"  warehouses matching replay   : "
        f"{num_warehouses - result['mismatches']}/{num_warehouses}"
    )
    if result["mismatches"] or result["total_units"] != result["expected_units"]:
        raise SystemExit("inconsistent stock — atomic multicast ordering violated!")
    print("  every conflicting transfer was applied in the same order at both endpoints\n")


def run_replicated_failover(
    workload_rng: Random = None,
    jitter_seed: int = 5,
    num_adjustments: int = 60,
    crash_at_ms: float = 205.0,
):
    """Part 2 as a reusable function: leader crash on a replicated group."""
    rng = workload_rng if workload_rng is not None else Random(9)
    loop = EventLoop()
    latencies = LatencyMatrix(matrix=[[0.5, 5], [5, 0.5]], names=["wh", "clients"])
    network = Network(loop, latencies, jitter_ms=0.5, seed=jitter_seed)
    protocol = FlexCastProtocol(CDagOverlay([0]))

    warehouse = Warehouse(0)
    delivered = []

    def sink(group_id, message):
        warehouse.apply(message.payload)
        delivered.append(message.msg_id)

    group = ReplicatedGroup(
        group_id=0, protocol=protocol, network=network, site=0, sink=sink,
        replication_factor=3,
    )
    network.register("client", site=1, handler=lambda s, p: None)

    adjustments = []
    for i in range(num_adjustments):
        adjustment = {
            "id": f"a{i}",
            "item": rng.choice(ITEMS),
            "quantity": rng.randint(1, 5),
            "from": -1,      # external supplier
            "to": 0,
        }
        adjustments.append(adjustment)
        message = Message.create(
            [0], sender="client", payload=adjustment, payload_bytes=64, msg_id=f"a{i}"
        )
        loop.schedule(
            i * 10.0,
            lambda message=message: network.send(
                "client", group.leader.replica_id, ClientRequest(message=message)
            ),
        )
    # Crash the initial leader a third of the way through the run.
    loop.schedule(crash_at_ms, lambda: group.crash_replica(0, network))
    loop.run_until_idle()

    survivors = [r for i, r in enumerate(group.replicas) if i != 0]
    logs = group.delivered_sequences()
    agree = logs[survivors[0].replica_id] == logs[survivors[1].replica_id]
    return {
        "adjustments": adjustments,
        "delivered": delivered,
        "group": group,
        "survivors": survivors,
        "agree": agree,
        "warehouse": warehouse,
    }


def replicated_warehouse_failover() -> None:
    """Part 2: one warehouse group survives the crash of its leader replica."""
    result = run_replicated_failover()
    group, delivered = result["group"], result["delivered"]
    adjustments = result["adjustments"]
    print("Part 2 — replicated warehouse group (multi-Paxos, 3 replicas)")
    print(f"  adjustments submitted        : {len(adjustments)}")
    print(f"  delivered to the application : {len(delivered)}")
    print(f"  leader after the crash       : {group.leader.replica_id}")
    print(f"  surviving replicas agree     : {result['agree']}")
    if not result["agree"] or len(delivered) < len(adjustments) * 0.9:
        raise SystemExit("replicated group lost consistency or too many adjustments!")
    print("  the group kept ordering and applying adjustments across the fail-over")


def main() -> None:
    geo_distributed_inventory()
    replicated_warehouse_failover()


if __name__ == "__main__":
    main()
