#!/usr/bin/env python3
"""Workload-aware overlay reconfiguration: latency recovering after a shift.

FlexCast's overlays are tuned to a workload — but workloads move.  This
example runs the canonical workload-shift scenario twice on the deterministic
simulator:

* **stale** — the overlay built for the phase-1 workload is kept forever;
* **reconfigured** — the :mod:`repro.reconfig` loop (workload monitor →
  planner → epoch coordinator) notices the shift, re-plans the C-DAG against
  the observed traffic, and live-switches the overlay with a barrier +
  quiesce + history-handoff protocol (zero lost/duplicated/reordered
  deliveries, checker-verified across the epoch boundary).

Run with:  python examples/workload_shift.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.scenarios import workload_shift_scenario
from repro.reconfig.experiment import run_workload_shift


def window_series(result, start, end, step=1_000.0):
    t = start
    while t < end:
        yield t, result.mean_delivery_latency(t, min(t + step, end))
        t += step


def main() -> None:
    scenario = workload_shift_scenario()
    print(f"scenario: {scenario.name}")
    print(
        f"  phase 1 (0..{scenario.shift_ms:.0f} ms): clients homed at "
        f"{sorted({p.home for p in scenario.phase1})} (cluster 0)"
    )
    print(
        f"  phase 2 ({scenario.shift_ms:.0f}..{scenario.duration_ms:.0f} ms): "
        f"clients homed at {sorted({p.home for p in scenario.phase2})} (cluster 1)"
    )
    print(f"  initial overlay order: {list(scenario.initial_order)}\n")

    stale = run_workload_shift(scenario, with_reconfig=False)
    tuned = run_workload_shift(scenario, with_reconfig=True)
    stale.raise_if_unsafe()
    tuned.raise_if_unsafe()

    switch = tuned.switches[0]
    print("reconfiguration timeline:")
    print(f"  triggered at    {switch.started_ms:>8.0f} ms (planner saw the shift)")
    print(f"  intake closed   {switch.prepared_ms:>8.0f} ms (all groups prepared)")
    print(
        f"  drained at      {switch.drained_ms:>8.0f} ms "
        f"(barrier delivered, {switch.quiesce_rounds} quiesce rounds)"
    )
    print(f"  committed at    {switch.completed_ms:>8.0f} ms (epoch {switch.epoch})")
    print(f"  switch-over cost: {switch.duration_ms:.0f} ms")
    print(f"  new overlay order: {list(tuned.final_order)}\n")

    print("mean per-destination delivery latency (ms), 1 s windows:")
    print(f"  {'window':>14} {'stale':>8} {'reconfigured':>13}")
    series_stale = dict(window_series(stale, 0.0, scenario.duration_ms))
    series_tuned = dict(window_series(tuned, 0.0, scenario.duration_ms))
    for t in sorted(series_stale):
        marker = ""
        if t <= scenario.shift_ms < t + 1_000.0:
            marker = "  <- workload shifts"
        if switch.completed_ms is not None and t <= switch.completed_ms < t + 1_000.0:
            marker = "  <- overlay switched"
        print(
            f"  {t/1000:>6.0f}-{(t+1000)/1000:<5.0f}s {series_stale[t]:>8.1f} "
            f"{series_tuned[t]:>13.1f}{marker}"
        )

    window = (scenario.post_eval_ms, scenario.duration_ms)
    print(
        f"\npost-shift steady state ({window[0]/1000:.0f}-{window[1]/1000:.0f} s): "
        f"stale {stale.mean_delivery_latency(*window):.1f} ms -> reconfigured "
        f"{tuned.mean_delivery_latency(*window):.1f} ms"
    )
    print("atomic multicast safety checks passed across the epoch boundary.")


if __name__ == "__main__":
    main()
